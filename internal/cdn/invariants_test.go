package cdn

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"
	"time"

	"cdnconsistency/internal/audit"
	"cdnconsistency/internal/consistency"
	"cdnconsistency/internal/netmodel"
	"cdnconsistency/internal/topology"
	"cdnconsistency/internal/workload"
)

// Property: any valid (method, infra, seed) combination produces a sane
// result — non-negative stats, consistent accounting, bounded fractions.
func TestPropertyRunInvariants(t *testing.T) {
	methods := []consistency.Method{
		consistency.MethodTTL, consistency.MethodPush, consistency.MethodInvalidation,
		consistency.MethodSelfAdaptive, consistency.MethodAdaptiveTTL,
	}
	infras := []consistency.Infra{
		consistency.InfraUnicast, consistency.InfraMulticast, consistency.InfraHybrid,
	}
	game := workload.GameConfig{
		Phases: []workload.Phase{
			{Name: "p", Duration: 5 * time.Minute, MeanGap: 25 * time.Second},
			{Name: "b", Duration: 2 * time.Minute, MeanGap: 0},
		},
		SizeKB: 1,
	}
	f := func(mIdx, iIdx uint8, seed int64) bool {
		m := methods[int(mIdx)%len(methods)]
		inf := infras[int(iIdx)%len(infras)]
		updates, err := workload.Schedule(game, seed)
		if err != nil {
			return false
		}
		res, err := Run(Config{
			Method:   m,
			Infra:    inf,
			Topology: topology.Config{Servers: 15, UsersPerServer: 1, Seed: seed},
			Clusters: 3,
			Updates:  updates,
			Seed:     seed,
			// The live auditor verifies the same predicates at cadence
			// mid-run; a violation surfaces as the run's error.
			Audit: &AuditOptions{},
		})
		if err != nil {
			t.Logf("%v/%v seed %d: %v", m, inf, seed, err)
			return false
		}
		// Offline, the result must satisfy the same shared predicates the
		// runtime auditor enforces (internal/audit): one property set, two
		// enforcement points.
		for name, series := range map[string][]float64{
			"ServerAvgInconsistency": res.ServerAvgInconsistency,
			"UserAvgInconsistency":   res.UserAvgInconsistency,
			"RecoverySeconds":        res.RecoverySeconds,
		} {
			if v := audit.CheckSeries(name, series); v != nil {
				t.Logf("%v/%v seed %d: %v", m, inf, seed, v)
				return false
			}
		}
		for name, v := range map[string]*audit.Violation{
			"observations": audit.CheckCount("inconsistent observations",
				res.UserInconsistentObservations, res.UserObservations),
			"frac":       audit.CheckFraction("InconsistentObservationFrac", res.InconsistentObservationFrac()),
			"stale-frac": audit.CheckFraction("StaleServeFrac", res.StaleServeFrac()),
			"accounting": audit.CheckAccounting(res.Accounting),
		} {
			if v != nil {
				t.Logf("%v/%v seed %d: %s: %v", m, inf, seed, name, v)
				return false
			}
		}
		return res.AuditChecks > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// The TTL method's mean catch-up tracks TTL/2 across a sweep — the
// theoretical relationship Section 3.4.1 relies on.
func TestTTLMeanTracksHalfTTL(t *testing.T) {
	for _, ttl := range []time.Duration{10 * time.Second, 20 * time.Second, 40 * time.Second} {
		ttl := ttl
		t.Run(ttl.String(), func(t *testing.T) {
			cfg := baseConfig(t, consistency.MethodTTL, consistency.InfraUnicast)
			cfg.ServerTTL = ttl
			res := mustRun(t, cfg)
			want := ttl.Seconds() / 2
			got := res.MeanServerInconsistency()
			if got < want*0.7 || got > want*1.5 {
				t.Errorf("mean = %.2fs, want ~%.1fs (TTL/2)", got, want)
			}
		})
	}
}

// Push delivers every update to every server exactly once per tree edge:
// total update messages = updates x servers in unicast.
func TestPushMessageCountExact(t *testing.T) {
	cfg := baseConfig(t, consistency.MethodPush, consistency.InfraUnicast)
	res := mustRun(t, cfg)
	updates := len(cfg.Updates)
	want := updates * 80
	if res.UpdateMsgsToServers != want {
		t.Errorf("update msgs = %d, want %d (%d updates x 80 servers)",
			res.UpdateMsgsToServers, want, updates)
	}
	if res.UpdateMsgsFromProvider != want {
		t.Errorf("provider msgs = %d, want %d in unicast", res.UpdateMsgsFromProvider, want)
	}
}

// In multicast Push the provider sends only to its direct children; the
// total across the tree still covers every server once per update.
func TestPushMulticastMessageSplit(t *testing.T) {
	cfg := baseConfig(t, consistency.MethodPush, consistency.InfraMulticast)
	cfg.TreeDegree = 2
	res := mustRun(t, cfg)
	updates := len(cfg.Updates)
	if res.UpdateMsgsToServers != updates*80 {
		t.Errorf("total update msgs = %d, want %d", res.UpdateMsgsToServers, updates*80)
	}
	if res.UpdateMsgsFromProvider != updates*2 {
		t.Errorf("provider msgs = %d, want %d (degree-2 root)", res.UpdateMsgsFromProvider, updates*2)
	}
}

// All servers converge to the final snapshot under every method when given
// slack and no failures (eventual consistency).
func TestEventualConsistencyAllMethods(t *testing.T) {
	for _, m := range []consistency.Method{
		consistency.MethodTTL, consistency.MethodPush, consistency.MethodInvalidation,
		consistency.MethodSelfAdaptive, consistency.MethodLease,
	} {
		m := m
		t.Run(m.String(), func(t *testing.T) {
			cfg := baseConfig(t, m, consistency.InfraUnicast)
			cfg.HorizonSlack = 10 * time.Minute
			res := mustRun(t, cfg)
			frac := float64(res.LiveServersAtFinalVersion) / float64(res.LiveServers)
			// Invalidation needs a visit after the last update; with 2
			// users per server at 10s cadence everyone gets one.
			if frac < 1 {
				t.Errorf("only %.0f%% of servers reached the final snapshot", frac*100)
			}
		})
	}
}

// Traffic cost in km*KB equals km x size for uniform payloads.
func TestAccountingKmKBRelation(t *testing.T) {
	cfg := baseConfig(t, consistency.MethodPush, consistency.InfraUnicast)
	cfg.UpdateSizeKB = 3
	res := mustRun(t, cfg)
	up := res.Accounting.ByClass[netmodel.ClassUpdate]
	if math.Abs(up.KmKB-3*up.Km) > 1e-6*up.KmKB {
		t.Errorf("KmKB %.1f != 3 x Km %.1f", up.KmKB, up.Km)
	}
}

// Seeds are honored end to end: different seeds produce different runs.
func TestSeedsDiffer(t *testing.T) {
	mk := func(seed int64) *Result {
		updates, err := workload.Schedule(testGame(), seed)
		if err != nil {
			t.Fatal(err)
		}
		return mustRun(t, Config{
			Method:   consistency.MethodTTL,
			Infra:    consistency.InfraUnicast,
			Topology: topology.Config{Servers: 30, UsersPerServer: 1, Seed: seed},
			Updates:  updates,
			Seed:     seed,
		})
	}
	a, b := mk(1), mk(2)
	if a.Events == b.Events && fmt.Sprint(a.ServerAvgInconsistency) == fmt.Sprint(b.ServerAvgInconsistency) {
		t.Error("different seeds produced identical runs")
	}
}

// The OnCatchUp observer sees exactly the events the result aggregates.
func TestOnCatchUpObserver(t *testing.T) {
	cfg := baseConfig(t, consistency.MethodPush, consistency.InfraUnicast)
	type ev struct {
		server, snapshot int
	}
	var events []ev
	var delaySum float64
	cfg.OnCatchUp = func(server, snapshot int, delay time.Duration) {
		if server < 0 || server >= 80 {
			t.Fatalf("server index %d out of range", server)
		}
		if delay < 0 {
			t.Fatalf("negative delay %v", delay)
		}
		events = append(events, ev{server, snapshot})
		delaySum += delay.Seconds()
	}
	res := mustRun(t, cfg)
	if len(events) == 0 {
		t.Fatal("observer saw no events")
	}
	// Under unicast Push every (server, update) pair is caught once:
	// the observer count must match the update message count.
	if len(events) != res.UpdateMsgsToServers {
		t.Errorf("observer events = %d, update msgs = %d", len(events), res.UpdateMsgsToServers)
	}
	// The aggregate mean must equal the observer's mean.
	var resSum float64
	for _, v := range res.ServerAvgInconsistency {
		resSum += v
	}
	obsMean := delaySum / float64(len(events))
	resMean := res.MeanServerInconsistency()
	if math.Abs(obsMean-resMean) > 0.01 {
		t.Errorf("observer mean %.4f vs result mean %.4f", obsMean, resMean)
	}
}

// Cross-feature: self-adaptive under DNS routing completes and stays sane.
func TestSelfAdaptiveWithDNSRouting(t *testing.T) {
	cfg := baseConfig(t, consistency.MethodSelfAdaptive, consistency.InfraUnicast)
	cfg.UseDNSRouting = true
	res := mustRun(t, cfg)
	if res.DNSVisits == 0 {
		t.Fatal("no DNS visits")
	}
	if f := res.InconsistentObservationFrac(); f < 0 || f > 1 {
		t.Fatalf("fraction %v", f)
	}
}

// Cross-feature: regime controller with user switching (every visit hits a
// random server, feeding every server's visit estimator).
func TestRegimeWithUserSwitching(t *testing.T) {
	cfg := baseConfig(t, consistency.MethodRegime, consistency.InfraUnicast)
	cfg.UserSwitchEveryVisit = true
	res := mustRun(t, cfg)
	if res.UserObservations == 0 {
		t.Fatal("no observations")
	}
}

// Cross-feature: lossy network with every method still converges.
func TestLossyNetworkAllMethods(t *testing.T) {
	for _, m := range []consistency.Method{
		consistency.MethodTTL, consistency.MethodPush, consistency.MethodInvalidation,
		consistency.MethodSelfAdaptive,
	} {
		cfg := baseConfig(t, m, consistency.InfraUnicast)
		cfg.Net = netmodel.Config{LossProb: 0.1, RetransmitTimeout: 500 * time.Millisecond}
		cfg.HorizonSlack = 10 * time.Minute
		res := mustRun(t, cfg)
		frac := float64(res.LiveServersAtFinalVersion) / float64(res.LiveServers)
		if frac < 0.95 {
			t.Errorf("%v under loss: converged %.2f", m, frac)
		}
	}
}
