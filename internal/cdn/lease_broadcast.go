package cdn

import (
	"time"

	"cdnconsistency/internal/netmodel"
)

// This file implements the two taxonomy completions: cooperative leases
// (related work [13]: push while a lease is valid, renew on visit) and
// cluster flooding (the paper's broadcast class: Push-fast consistency at a
// message cost quadratic in cluster size).

// --- Cooperative leases ---

// scheduleLeaseLoops acquires each server's initial lease at a staggered
// offset, mirroring how caches populate on first demand.
func (s *simulation) scheduleLeaseLoops() {
	for _, nd := range s.nodes[1:] {
		i := nd.idx
		offset := time.Duration(s.rng(i).Int63n(int64(s.cfg.LeaseDuration)))
		s.at(i, offset, func() { s.renewLease(i, nil) })
	}
}

// renewLease sends a lease request to the provider; the response carries
// the current content and a fresh lease. onDone fires when the content is
// in (deferred user observation on visit-triggered renewals). A dark or
// partitioned provider never grants: the renewal times out after one lease
// duration, pending visitors get the stale content, and the next visit
// retries.
func (s *simulation) renewLease(i int, onDone func()) {
	nd := s.nodes[i]
	if onDone != nil {
		nd.fetchCallbacks = append(nd.fetchCallbacks, onDone)
	}
	if nd.leaseRenewing {
		return
	}
	nd.leaseRenewing = true
	nd.leaseSeq++
	seq, gen := nd.leaseSeq, nd.gen
	s.deliver(i, 0, s.cfg.LightSizeKB, netmodel.ClassLight, func() {
		if s.providerDown {
			return // outage: no grant; the renewal timeout serves stale
		}
		provider := s.nodes[0]
		expiry := s.now(0) + s.cfg.LeaseDuration
		if provider.leases == nil {
			provider.leases = make(map[int]time.Duration)
		}
		provider.leases[i] = expiry
		v := provider.version
		s.deliver(0, i, s.cfg.UpdateSizeKB, netmodel.ClassUpdate, func() {
			if nd.gen != gen || nd.leaseSeq != seq || !nd.leaseRenewing {
				return
			}
			nd.leaseRenewing = false
			if nd.down {
				return
			}
			s.setVersion(nd, v)
			nd.leaseExpiry = expiry
			cbs := nd.fetchCallbacks
			nd.fetchCallbacks = nil
			for _, cb := range cbs {
				cb()
			}
		})
	})
	s.at(i, s.now(i)+s.cfg.LeaseDuration, func() {
		if nd.gen != gen || nd.leaseSeq != seq || !nd.leaseRenewing {
			return
		}
		// The grant never came back: give up and serve stale to the
		// waiting visitors.
		nd.leaseRenewing = false
		cbs := nd.fetchCallbacks
		nd.fetchCallbacks = nil
		for _, cb := range cbs {
			cb()
		}
	})
}

// pushToLeaseholders delivers a freshly published update to every server
// whose lease is still valid, dropping expired entries.
func (s *simulation) pushToLeaseholders() {
	provider := s.nodes[0]
	v := provider.version
	now := s.now(0)
	for i := 1; i < len(s.nodes); i++ {
		expiry, ok := provider.leases[i]
		if !ok {
			continue
		}
		if expiry <= now {
			delete(provider.leases, i)
			continue
		}
		child := i
		s.deliver(0, child, s.cfg.UpdateSizeKB, netmodel.ClassUpdate, func() {
			nd := s.nodes[child]
			if nd.down || v <= nd.version {
				return
			}
			s.setVersion(nd, v)
		})
	}
}

// leaseValid reports whether a server's lease covers the current time.
func (s *simulation) leaseValid(i int) bool {
	return s.nodes[i].leaseExpiry > s.now(i)
}

// --- Cluster flooding (broadcast) ---

// buildBroadcastClusters assigns every server to a Hilbert proximity
// cluster; flooding stays within the cluster.
func (s *simulation) buildBroadcastClusters() error {
	clusters, err := s.topo.HilbertClusters(s.cfg.Clusters)
	if err != nil {
		return err
	}
	s.clusterOf = make([]int, len(s.nodes))
	s.clusterMembers = make([][]int, len(clusters))
	for ci, cl := range clusters {
		for _, m := range cl.Members {
			ni := m + 1
			s.clusterOf[ni] = ci
			s.clusterMembers[ci] = append(s.clusterMembers[ci], ni)
		}
	}
	return nil
}

// broadcastUpdate seeds every cluster with the new content; receivers flood
// it to all their cluster peers (duplicates are received and dropped — the
// redundant-message cost the paper charges this class with).
func (s *simulation) broadcastUpdate() {
	v := s.nodes[0].version
	for ci := range s.clusterMembers {
		if len(s.clusterMembers[ci]) == 0 {
			continue
		}
		seed := s.clusterMembers[ci][0]
		child := seed
		s.deliver(0, child, s.cfg.UpdateSizeKB, netmodel.ClassUpdate, func() { s.floodReceive(child, v) })
	}
}

// floodReceive handles one flooded copy: first-time receivers adopt the
// content and re-flood to every cluster peer.
func (s *simulation) floodReceive(i, v int) {
	nd := s.nodes[i]
	if nd.down || v <= nd.version {
		return // duplicate or stale copy: absorbed silently
	}
	s.setVersion(nd, v)
	for _, peer := range s.clusterMembers[s.clusterOf[i]] {
		if peer == i {
			continue
		}
		p := peer
		s.deliver(i, p, s.cfg.UpdateSizeKB, netmodel.ClassUpdate, func() { s.floodReceive(p, v) })
	}
}
