package cdn

import (
	"fmt"
	"time"

	"cdnconsistency/internal/audit"
	"cdnconsistency/internal/consistency"
	"cdnconsistency/internal/netmodel"
)

// AuditOptions configures the runtime invariant auditor. The auditor rides
// the simulation's own execution: at every Cadence of virtual time it sweeps
// the full conservation-property set (tree structure, version bounds,
// catch-up accounting, counter monotonicity, traffic-ledger conservation,
// delivery conservation), and it re-checks the overlay tree immediately after
// every failover mutation. The first violated property stops the run and is
// returned as the run's error, so a corrupted simulation can never produce a
// figure.
//
// In a serial run, audit sweeps are engine events, so an audited run
// processes more events than an unaudited one — but they draw no randomness
// and mutate nothing, so every reported metric is identical with the auditor
// on or off. In a sharded run the sweeps execute at window barriers instead
// (every cell quiescent, coordinator single-threaded): per-event observations
// are recorded cell-locally by the worker that owns the cell and folded in
// deterministic cell order at the next barrier, so the audited run processes
// exactly the same events — and produces exactly the same Result — as the
// unaudited one.
type AuditOptions struct {
	// Cadence is the virtual-time period between full sweeps; default 30 s.
	Cadence time.Duration
	// SelfTest, when non-empty, injects one named, deliberate corruption
	// halfway through the run so operators can prove the auditor tripwire
	// end-to-end (a run configured this way must fail). Valid names:
	// "version-bounds" (a server's version is forced beyond every published
	// snapshot),
	// "counter-negative" (a cumulative counter is forced negative), and
	// "delivery-conservation" (a delivery attempt is booked with no matching
	// send or drop).
	SelfTest string
}

const defaultAuditCadence = 30 * time.Second

// AuditSelfTestNames lists the valid AuditOptions.SelfTest values, in the
// order they are documented.
func AuditSelfTestNames() []string {
	return []string{"version-bounds", "counter-negative", "delivery-conservation"}
}

// ValidAuditSelfTest reports whether name is empty or a known self-test.
func ValidAuditSelfTest(name string) bool {
	if name == "" {
		return true
	}
	for _, n := range AuditSelfTestNames() {
		if n == name {
			return true
		}
	}
	return false
}

// auditor holds the sweep state: the previous observation of every monotone
// quantity, the precomputed catch-up delay bound, and the first violation.
type auditor struct {
	s       *simulation
	cadence time.Duration
	checks  int
	// violation is the first failed property; once set, the engine is
	// stopped and later sweeps are no-ops.
	violation *audit.Violation

	// delayBound caps each recorded server catch-up delay. Zero means only
	// non-negativity is enforced: under faults, loss, or visit-driven pull
	// methods there is no sound a-priori bound short of the horizon.
	delayBound time.Duration

	// nextSweep is the next cadence boundary, consumed by the sharded
	// barrier driver (serial runs schedule sweeps as engine events instead).
	nextSweep time.Duration

	prevVersion    []int
	prevGen        []int
	prevCatchupSum []float64
	prevCatchupN   []int
	prevCounters   map[string]int
}

func newAuditor(s *simulation) *auditor {
	a := &auditor{
		s:              s,
		cadence:        defaultAuditCadence,
		prevVersion:    make([]int, len(s.nodes)),
		prevGen:        make([]int, len(s.nodes)),
		prevCatchupSum: make([]float64, len(s.nodes)),
		prevCatchupN:   make([]int, len(s.nodes)),
		prevCounters:   make(map[string]int),
	}
	if s.cfg.Audit.Cadence > 0 {
		a.cadence = s.cfg.Audit.Cadence
	}
	a.nextSweep = a.cadence
	a.delayBound = s.regimeMaxDelay()
	return a
}

// regimeMaxDelay computes the sound upper bound on one server catch-up delay,
// or 0 when no such bound exists. A strict bound holds only in the fault-free
// regime (no injected faults, no crash-stops, no message loss — every one of
// those legitimately stretches staleness to the outage length) and only for
// methods whose pull is periodic by construction: TTL, AdaptiveTTL (whose
// poll period is capped at 4x ServerTTL), and Push (immediate relay). The
// visit-driven methods (Invalidation, Self-adaptive, Lease, Regime) refresh a
// replica only when traffic arrives, so a rarely-visited server can lag
// arbitrarily long without any invariant being broken.
func (s *simulation) regimeMaxDelay() time.Duration {
	cfg := s.cfg
	if cfg.FailServers > 0 || (cfg.Faults != nil && !cfg.Faults.Empty()) || cfg.Net.LossProb > 0 {
		return 0
	}
	if cfg.Federation != nil {
		// Per-provider TTL overrides and propagation delays break the
		// uniform per-hop bound; only non-negativity is enforced.
		return 0
	}
	switch cfg.Method {
	case consistency.MethodTTL, consistency.MethodAdaptiveTTL, consistency.MethodPush:
	default:
		return 0
	}
	depth := s.tree.MaxDepth()
	if depth < 1 {
		depth = 1
	}
	// Per-hop worst case: the longest poll period (AdaptiveTTL caps at
	// 4x ServerTTL), plus a delivery allowance covering antipodal
	// propagation, inter-ISP penalty, jitter, and uplink queuing of a full
	// fanout of update payloads behind one transmission.
	netCfg := s.cells[0].net.Config()
	const antipodalKm = 20038.0
	prop := time.Duration(antipodalKm / netCfg.PropagationKmPerSec * float64(time.Second))
	prop += time.Duration(float64(prop) * netCfg.JitterFrac)
	prop += netCfg.BaseDelay + netCfg.InterISPDelay
	// An uplink backlog is bounded by everything ever enqueued, not one
	// fanout: when updates arrive faster than the link drains (the
	// Figure-19 saturation regime), waves pile up behind each other.
	waves := float64(len(cfg.Updates))
	if waves < 1 {
		waves = 1
	}
	queue := time.Duration(waves * float64(len(s.nodes)) * cfg.UpdateSizeKB / netCfg.DefaultUplinkKBps * float64(time.Second))
	perHop := 4*cfg.ServerTTL + 2*(prop+queue)
	// Double the depth product as slack: the bound must never false-positive
	// on a healthy run, only catch corrupted accounting (negative publish
	// times, delays of days).
	return 2 * time.Duration(depth) * perHop
}

// fail records the first violation, stamps it with the simulation clock, and
// — in a serial run — stops the engine so no further (possibly corrupted)
// events execute. A sharded run is aborted by the barrier driver returning
// the violation instead: Stop on one cell would be a cross-cell mutation.
func (a *auditor) fail(v *audit.Violation) {
	if v == nil || a.violation != nil {
		return
	}
	if v.Time == 0 {
		v.Time = a.s.cells[0].eng.Now()
	}
	a.violation = v
	if !a.s.sharded() {
		a.s.cells[0].eng.Stop()
	}
}

// onDelay audits one recorded server catch-up delay as it happens. In a
// sharded run it executes on the worker goroutine that owns the node's cell,
// so the finding is parked cell-locally (stamped with the cell's own clock)
// and promoted by the coordinator at the next barrier — no shared auditor
// state is touched mid-window.
func (a *auditor) onDelay(nodeIdx int, delay time.Duration) {
	if a.s.sharded() {
		c := a.s.cell(nodeIdx)
		if c.audDelayViol != nil {
			return
		}
		if v := audit.CheckBoundedDelay(fmt.Sprintf("catch-up delay of node %d", nodeIdx), delay, a.delayBound); v != nil {
			v.Server = nodeIdx
			v.Time = c.eng.Now()
			c.audDelayViol = v
		}
		return
	}
	if a.violation != nil {
		return
	}
	if v := audit.CheckBoundedDelay(fmt.Sprintf("catch-up delay of node %d", nodeIdx), delay, a.delayBound); v != nil {
		v.Server = nodeIdx
		a.fail(v)
	}
}

// onTreeMutation re-checks the overlay tree immediately after a failover
// mutation (crash-time repair, detection-driven reparent, recovery rejoin),
// so a mutation that corrupts the tree is caught at the event that caused it
// rather than at the next cadence sweep. In a sharded run the tree spans
// cells, so the re-check cannot run on the mutating worker; the mutation is
// flagged in node nodeIdx's cell and the coordinator re-checks at the next
// barrier, when every cell is quiescent.
func (a *auditor) onTreeMutation(nodeIdx int, where string) {
	if a.s.sharded() {
		c := a.s.cell(nodeIdx)
		if c.audPendingTree == 0 {
			c.audTreeWhere = where
		}
		c.audPendingTree++
		return
	}
	if a.violation != nil {
		return
	}
	a.checks++
	if v := a.checkTree(); v != nil {
		v.Detail = where + ": " + v.Detail
		a.fail(v)
	}
}

// barrier is the sharded auditor driver, invoked by the coordinator at every
// window barrier (and once more after the run drains) with the barrier time.
// Cells are quiescent, so it may read any cell's state: it promotes
// cell-local delay findings in deterministic cell order, re-checks the tree
// if any cell flagged a failover mutation since the last barrier, and runs
// the full cadence sweep whenever the barrier crosses a cadence boundary. A
// non-nil return aborts the sharded run with the violation.
func (a *auditor) barrier(now time.Duration) error {
	if a.violation != nil {
		return a.violation
	}
	for _, c := range a.s.cells {
		if c.audDelayViol != nil {
			a.violation = c.audDelayViol
			return a.violation
		}
	}
	where, pending := "", false
	for _, c := range a.s.cells {
		if c.audPendingTree > 0 {
			if !pending {
				where = c.audTreeWhere
			}
			pending = true
			c.audPendingTree = 0
			c.audTreeWhere = ""
		}
	}
	if pending {
		a.checks++
		if v := a.checkTree(); v != nil {
			v.Detail = where + ": " + v.Detail
			v.Time = now
			a.violation = v
			return v
		}
	}
	if now >= a.nextSweep {
		a.checks++
		if v := a.check(); v != nil {
			v.Time = now
			a.violation = v
			return v
		}
		for a.nextSweep <= now {
			a.nextSweep += a.cadence
		}
	}
	return nil
}

// checkTree runs the shared structural predicate in live (tolerant) mode: a
// failed best-effort repair may leave a live subtree anchored under a dead
// detached relay, which is recorded degradation, not corruption.
func (a *auditor) checkTree() *audit.Violation {
	degree := 0
	if a.s.cfg.Infra == consistency.InfraMulticast {
		degree = a.s.cfg.TreeDegree
	}
	return audit.CheckTree(a.s.tree, degree, a.s.alive, true)
}

// sweep runs the full conservation-property set. It is scheduled at cadence
// through the engine (so Time stamps are exact) and once more after the run
// drains.
func (a *auditor) sweep() {
	if a.violation != nil {
		return
	}
	a.checks++
	if v := a.check(); v != nil {
		a.fail(v)
	}
}

func (a *auditor) check() *audit.Violation {
	s := a.s
	if v := a.checkTree(); v != nil {
		return v
	}
	if v := a.checkNodes(); v != nil {
		return v
	}
	if v := a.checkUsers(); v != nil {
		return v
	}
	if v := a.checkCounters(); v != nil {
		return v
	}
	if v := a.checkDelivery(); v != nil {
		return v
	}
	if v := a.checkVisitTraffic(); v != nil {
		return v
	}
	if v := a.checkFederation(); v != nil {
		return v
	}
	// The copy-free view keeps the per-sweep conservation check from cloning
	// the whole per-sender ledger every cadence. Each cell books its own
	// senders' traffic, so the ledger invariants hold cell by cell.
	for _, c := range s.cells {
		if v := audit.CheckAccounting(c.net.View()); v != nil {
			return v
		}
	}
	return nil
}

// checkNodes verifies per-node version and catch-up accounting invariants:
// versions stay within [0, published] and move monotonically within one
// incarnation (a crash or recovery bumps gen and may legally reset the
// version), catch-up sums are finite, non-negative, and never run backwards,
// and a down node is never counted live by the tree bookkeeping.
func (a *auditor) checkNodes() *audit.Violation {
	s := a.s
	for i, nd := range s.nodes {
		// Each cell advances its own published marker, and a node's version
		// only moves through its own cell's events, so the bound that is
		// exact at any barrier is the node's own cell's published — a lagging
		// (idle-skipped) cell simply has both sides lagging together.
		published := s.cell(i).published
		if nd.version < 0 || nd.version > published {
			v := violationAt("version-bounds", i,
				"node %d holds version %d outside [0, %d]", i, nd.version, published)
			v.Snapshot = a.nodeSnapshot(nd)
			return v
		}
		if nd.gen == a.prevGen[i] && nd.version < a.prevVersion[i] {
			v := violationAt("version-monotonic", i,
				"node %d regressed from version %d to %d within generation %d",
				i, a.prevVersion[i], nd.version, nd.gen)
			v.Snapshot = a.nodeSnapshot(nd)
			return v
		}
		if nd.recovering && (nd.syncTarget < 0 || nd.syncTarget > published) {
			return violationAt("version-bounds", i,
				"node %d recovering toward %d outside [0, %d]", i, nd.syncTarget, published)
		}
		if v := audit.CheckSeries(fmt.Sprintf("node %d catchupSum", i), []float64{nd.catchupSum}); v != nil {
			v.Server = i
			return v
		}
		if nd.catchupSum < a.prevCatchupSum[i] || nd.catchupN < a.prevCatchupN[i] {
			v := violationAt("catchup-accounting", i,
				"node %d catch-up accounting ran backwards: sum %v->%v n %d->%d",
				i, a.prevCatchupSum[i], nd.catchupSum, a.prevCatchupN[i], nd.catchupN)
			v.Snapshot = a.nodeSnapshot(nd)
			return v
		}
		if nd.catchupN == 0 && nd.catchupSum != 0 {
			return violationAt("catchup-accounting", i,
				"node %d accumulated %v seconds over zero catch-ups", i, nd.catchupSum)
		}
		if i > 0 && nd.down && s.alive[i] {
			return violationAt("liveness-bookkeeping", i,
				"node %d is down but still marked alive in the tree bookkeeping", i)
		}
		a.prevVersion[i], a.prevGen[i] = nd.version, nd.gen
		a.prevCatchupSum[i], a.prevCatchupN[i] = nd.catchupSum, nd.catchupN
	}
	return nil
}

// checkUsers delegates to the user model's own invariants: per-user
// accounting sanity under the explicit model, plus population conservation
// (Σ cohort counts constant across churn and re-homing) and home bounds
// under the cohort model.
func (a *auditor) checkUsers() *audit.Violation {
	return a.s.um.audit()
}

// checkVisitTraffic cross-checks the batched visit accounting against the
// traffic ledger: under AccountVisits, every booked request is a
// content-class message and nothing else emits content-class traffic, so the
// ledger's content count must equal the independent visitsAccounted counter
// exactly — a batch lost (or double-booked) on the way into the ledger is a
// conservation violation.
func (a *auditor) checkVisitTraffic() *audit.Violation {
	s := a.s
	if !s.cfg.AccountVisits {
		return nil
	}
	// A visit is booked in the ledger and the counter of the same cell, so
	// the conservation law holds per cell — strictly stronger than comparing
	// the sums.
	for i, c := range s.cells {
		if got := c.net.View().Class(netmodel.ClassContent).Messages; got != c.visitsAccounted {
			return violationAt("visit-traffic-conservation", -1,
				"cell %d ledger holds %d content messages for %d accounted visits", i, got, c.visitsAccounted)
		}
	}
	return nil
}

// counterView lists every cumulative counter with its current value, summed
// across cells; each must be non-negative and monotone between sweeps
// (per-cell counters only grow, so their sums do too).
func (a *auditor) counterView() map[string]int {
	s := a.s
	view := map[string]int{
		// The modeled population is constant, so the monotone-counter check
		// doubles as a second population-conservation signal.
		"modeledUsers": s.um.totalUsers(),
	}
	for _, c := range s.cells {
		view["crashes"] += c.crashes
		view["recoveries"] += c.recoveries
		view["failedVisits"] += c.failedVisits
		view["userFailovers"] += c.userFailovers
		view["serverReparents"] += c.serverReparents
		view["ttlFallbacks"] += c.ttlFallbacks
		view["staleObservations"] += c.staleObservations
		view["updateMsgsToServers"] += c.updateMsgsToServers
		view["updateMsgsFromProvider"] += c.updateMsgsFromProvider
		view["lightMsgs"] += c.lightMsgs
		view["dnsVisits"] += c.dnsVisits
		view["dnsRedirects"] += c.dnsRedirects
		view["deliverAttempts"] += c.deliverAttempts
		view["deliverSends"] += c.deliverSends
		view["visitsAccounted"] += c.visitsAccounted
		view["degradedEnters"] += c.degradedEnters
		view["degradedExits"] += c.degradedExits
		view["providerSwitches"] += c.providerSwitches
		view["peerHandoffs"] += c.peerHandoffs
	}
	return view
}

func (a *auditor) checkCounters() *audit.Violation {
	cur := a.counterView()
	for name, val := range cur {
		if val < 0 {
			return violationAt("counter-nonnegative", -1, "%s = %d", name, val)
		}
		if v := audit.CheckMonotonicCount(name, a.prevCounters[name], val); v != nil {
			return v
		}
	}
	a.prevCounters = cur
	// Cross-counter relationships hold cell by cell: a crash, its recovery,
	// a failed visit and the failover it triggers, and a DNS lookup are all
	// booked in the cell that owns the node (users never leave their home
	// cell), so the per-cell check is strictly stronger than the summed one.
	for i, c := range a.s.cells {
		if v := audit.CheckCount(fmt.Sprintf("cell %d recoveries vs crashes", i), c.recoveries, c.crashes); v != nil {
			return v
		}
		if len(c.recoverySeconds) != c.recoveries {
			return violationAt("catchup-accounting", -1,
				"cell %d: %d recovery durations recorded for %d recoveries", i, len(c.recoverySeconds), c.recoveries)
		}
		if v := audit.CheckCount(fmt.Sprintf("cell %d userFailovers vs failedVisits", i), c.userFailovers, c.failedVisits); v != nil {
			return v
		}
		if v := audit.CheckCount(fmt.Sprintf("cell %d dnsRedirects vs dnsVisits", i), c.dnsRedirects, c.dnsVisits); v != nil {
			return v
		}
		if v := audit.CheckSeries("recoverySeconds", c.recoverySeconds); v != nil {
			return v
		}
	}
	return nil
}

// checkFederation verifies the federation runtime's conservation invariants
// against its independent second ledger: degradation intervals balance
// (enters − exits equals the currently-open intervals, and the reported
// degraded seconds equal the per-node interval sums), durable switches and
// peering hand-offs match the fed-side ledgers, home assignments stay in
// bounds, and no provider ever serves a version newer than the ground truth.
// Tamper with either side of any pair and this check catches the split.
func (a *auditor) checkFederation() *audit.Violation {
	f := a.s.fed
	if f == nil {
		return nil
	}
	c := a.s.cells[0]
	open := 0
	var total float64
	for i := range f.degradedSince {
		if f.degradedSince[i] >= 0 {
			open++
		}
		total += f.degradedTotal[i]
	}
	if c.degradedExits > c.degradedEnters {
		return violationAt("degradation-conservation", -1,
			"%d degradation exits for %d enters", c.degradedExits, c.degradedEnters)
	}
	if c.degradedEnters-c.degradedExits != open {
		return violationAt("degradation-conservation", -1,
			"%d enters - %d exits != %d open degradation intervals",
			c.degradedEnters, c.degradedExits, open)
	}
	if diff := c.degradedSeconds - total; diff > 1e-9 || diff < -1e-9 {
		return violationAt("degradation-ledger", -1,
			"degraded seconds counter %v != per-node interval sum %v", c.degradedSeconds, total)
	}
	if c.providerSwitches != f.ledgerSwitches {
		return violationAt("switch-ledger", -1,
			"providerSwitches counter %d != federation ledger %d", c.providerSwitches, f.ledgerSwitches)
	}
	if c.peerHandoffs != f.ledgerHandoffs {
		return violationAt("handoff-ledger", -1,
			"peerHandoffs counter %d != federation ledger %d", c.peerHandoffs, f.ledgerHandoffs)
	}
	for i := 1; i < len(f.home); i++ {
		if f.home[i] < 0 || f.home[i] >= len(f.prov) {
			return violationAt("home-bounds", i,
				"node %d homed at invalid provider %d of %d", i, f.home[i], len(f.prov))
		}
	}
	for k, p := range f.prov {
		if p.version < 0 || p.version > c.published {
			return violationAt("provider-version-bounds", -1,
				"provider %d serves version %d outside [0, %d]", k, p.version, c.published)
		}
	}
	return nil
}

// checkDelivery verifies delivery conservation: every delivery attempt either
// entered the network or was dropped with a recorded cause. An attempt
// unaccounted for in either column means a message silently vanished.
func (a *auditor) checkDelivery() *audit.Violation {
	// Attempts, sends, and drops are all booked in the sender's cell, so
	// delivery conservation holds per cell.
	for i, c := range a.s.cells {
		dropped := 0
		for cause, n := range c.deliverDrops {
			if n < 0 {
				return violationAt("delivery-conservation", -1, "cell %d drop cause %q count %d", i, cause, n)
			}
			dropped += n
		}
		if c.deliverAttempts != c.deliverSends+dropped {
			v := violationAt("delivery-conservation", -1,
				"cell %d: %d delivery attempts != %d sends + %d recorded drops",
				i, c.deliverAttempts, c.deliverSends, dropped)
			v.Snapshot = fmt.Sprintf("drops=%v", c.deliverDrops)
			return v
		}
	}
	return nil
}

func (a *auditor) nodeSnapshot(nd *node) string {
	return fmt.Sprintf("node %d: version=%d gen=%d down=%v recovering=%v syncTarget=%d catchupSum=%v catchupN=%d published=%d",
		nd.idx, nd.version, nd.gen, nd.down, nd.recovering, nd.syncTarget,
		nd.catchupSum, nd.catchupN, a.s.cell(nd.idx).published)
}

// scheduleAuditSelfTest arms the deliberate corruption named by
// AuditOptions.SelfTest: one event halfway through the run flips a single
// invariant, scheduled in the cell that owns the mutated state so the
// injection is legal under sharding. The run must then fail with the matching
// property — proving the tripwire end-to-end. withDefaults has already
// validated the name.
func (s *simulation) scheduleAuditSelfTest() {
	at := s.horizon / 2
	switch s.cfg.Audit.SelfTest {
	case "version-bounds":
		// Push a replica's version far beyond anything published. Versions
		// only ever move forward, so the corruption cannot self-heal through
		// an ordinary fetch before the next sweep observes it.
		s.at(1, at, func() { s.nodes[1].version += 1 << 20 })
	case "counter-negative":
		// Drive a cumulative counter far negative; the next counter sweep
		// trips counter-nonnegative.
		s.at(0, at, func() { s.cell(0).lightMsgs -= 1 << 40 })
	case "delivery-conservation":
		// Book a delivery attempt with no matching send or drop.
		s.at(0, at, func() { s.cell(0).deliverAttempts++ })
	}
}

// violationAt builds a violation pinned to one server (or -1 for global).
func violationAt(property string, server int, format string, args ...any) *audit.Violation {
	return &audit.Violation{Property: property, Server: server, Detail: fmt.Sprintf(format, args...)}
}
