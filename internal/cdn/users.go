package cdn

import (
	"time"

	"cdnconsistency/internal/consistency"
	"cdnconsistency/internal/dns"
)

// scheduleUsers creates the end-users attached to each server and their
// periodic visit loops. Users start at random offsets in [0, UserStartMax]
// as in the paper's Section 4 setup. Under DNS routing each user owns a
// local resolver; otherwise it is pinned to its home server (or switches
// randomly per visit in the Figure 24 scenario).
func (s *simulation) scheduleUsers() {
	for si := range s.topo.Servers {
		for ui := range s.topo.Users[si] {
			u := &user{idx: len(s.users), homeSrv: si + 1, lastServer: -1}
			if s.cfg.UseDNSRouting {
				resolver, err := dns.NewResolver(s.auth, s.topo.Users[si][ui].Loc, s.cfg.ResolverTTL)
				if err == nil {
					u.resolver = resolver
				}
			}
			s.users = append(s.users, u)
			offset := time.Duration(s.eng.Rand().Int63n(int64(s.cfg.UserStartMax)))
			s.at(offset, func() { s.visit(u) })
		}
	}
}

// visit performs one end-user request and reschedules the next.
func (s *simulation) visit(u *user) {
	target := s.routeVisit(u)
	nd := s.nodes[target]

	switch {
	case nd.down:
		// The server is dead: the request fails. A DNS-routed user will
		// eventually re-resolve; a pinned user keeps failing, matching
		// the paper's observation that cached IPs of failed servers keep
		// attracting requests (Section 3.4.5).
	case nd.auto != nil && nd.auto.OnVisit():
		// First visit after an invalidation under the self-adaptive
		// method: the server polls, switches back to TTL, and the user
		// receives the fresh content when it lands.
		s.selfAdaptiveVisitPoll(target, func() {
			s.observe(u, s.nodes[target].version)
		})
	case s.cfg.Method == consistency.MethodInvalidation && !nd.valid:
		// Invalidation: the visit triggers the fetch; the user waits
		// for the refreshed content.
		s.triggerFetch(target, func() {
			s.observe(u, s.nodes[target].version)
		})
	case s.cfg.Method == consistency.MethodRegime:
		if nd.rc != nil {
			nd.rc.ObserveVisit(s.eng.Now())
		}
		if !nd.valid {
			s.triggerFetch(target, func() {
				s.observe(u, s.nodes[target].version)
			})
		} else {
			s.observe(u, nd.version)
		}
	case s.cfg.Method == consistency.MethodLease && !s.leaseValid(target):
		// Cooperative lease expired: the visit renews it, and the user
		// receives the refreshed content with the new lease.
		s.renewLease(target, func() {
			s.observe(u, s.nodes[target].version)
		})
	default:
		s.observe(u, nd.version)
	}

	s.at(s.eng.Now()+s.cfg.UserTTL, func() { s.visit(u) })
}

// routeVisit picks the serving server for this visit.
func (s *simulation) routeVisit(u *user) int {
	switch {
	case u.resolver != nil:
		target, _ := u.resolver.Lookup(s.eng.Now())
		s.dnsVisits++
		if u.lastServer >= 0 && target != u.lastServer {
			s.dnsRedirects++
		}
		u.lastServer = target
		return target
	case s.cfg.UserSwitchEveryVisit && len(s.nodes) > 2:
		return 1 + s.eng.Rand().Intn(len(s.nodes)-1)
	default:
		return u.homeSrv
	}
}

// observe records what the user saw: catch-up delays for newly seen updates
// and the self-inconsistency counter (content older than previously seen,
// the Figure 24 metric).
func (s *simulation) observe(u *user, v int) {
	u.observations++
	if v < u.maxSeen {
		u.inconsistent++
		return
	}
	if v > u.maxSeen {
		now := s.eng.Now()
		for id := u.maxSeen + 1; id <= v && id < len(s.publishAt); id++ {
			if at := s.publishAt[id]; at > 0 && now >= at {
				u.catchupSum += (now - at).Seconds()
				u.catchupN++
			}
		}
		u.maxSeen = v
	}
}
