package cdn

import (
	"fmt"
	"time"

	"cdnconsistency/internal/audit"
	"cdnconsistency/internal/consistency"
	"cdnconsistency/internal/dns"
	"cdnconsistency/internal/geo"
	"cdnconsistency/internal/sim"
)

// user is one simulated end-user of the explicit model.
type user struct {
	idx     int
	homeSrv int // node index of the home server
	// loc is the user's location, used to re-home after a failed visit.
	loc geo.Point
	// period is the user's visit period (Config.UserTTL unless a population
	// cohort overrides it).
	period time.Duration
	// resolver routes visits when DNS routing is on; lastServer tracks
	// redirections.
	resolver   *dns.Resolver
	lastServer int
	agg        userAgg
}

// explicitUsers is the individual-actor user model: every user owns a visit
// event, exactly the paper's Section 4 setup.
type explicitUsers struct {
	s     *simulation
	users []*user
}

// schedule creates the end-users attached to each server and their periodic
// visit loops. Without a Population, users come from the topology and start
// at random offsets in [0, UserStartMax] as in the paper's Section 4 setup
// (this path draws engine randomness exactly as it always has). With a
// Population, users are expanded one per cohort member with the cohort's
// deterministic offset and period, drawing no randomness — the same
// schedule the cohort model runs in aggregate. Under DNS routing each user
// owns a local resolver; otherwise it is pinned to its home server (or
// switches randomly per visit in the Figure 24 scenario).
func (m *explicitUsers) schedule() error {
	s := m.s
	if s.cfg.Population != nil {
		for si, cohorts := range s.cfg.Population.Servers {
			for _, spec := range cohorts {
				period := spec.Period()
				if period <= 0 {
					period = s.cfg.UserTTL
				}
				for k := 0; k < spec.Count; k++ {
					u := &user{
						idx:        len(m.users),
						homeSrv:    si + 1,
						lastServer: -1,
						loc:        s.locs[si+1],
						period:     period,
					}
					m.users = append(m.users, u)
					// The user lives in its home server's cell; failover
					// re-homes within the cell, so the loop never migrates.
					s.cell(u.homeSrv).eng.ScheduleAfterFunc(spec.Offset(), visitEvent, m, int64(u.idx))
				}
			}
		}
		return nil
	}
	for si := range s.topo.Servers {
		for ui := range s.topo.Users[si] {
			u := &user{
				idx:        len(m.users),
				homeSrv:    si + 1,
				lastServer: -1,
				loc:        s.topo.Users[si][ui].Loc,
				period:     s.cfg.UserTTL,
			}
			if s.cfg.UseDNSRouting {
				resolver, err := dns.NewResolver(s.auth, s.topo.Users[si][ui].Loc, s.cfg.ResolverTTL)
				if err == nil {
					u.resolver = resolver
				}
			}
			m.users = append(m.users, u)
			offset := time.Duration(s.rng(u.homeSrv).Int63n(int64(s.cfg.UserStartMax)))
			s.cell(u.homeSrv).eng.ScheduleAfterFunc(offset, visitEvent, m, int64(u.idx))
		}
	}
	return nil
}

// visitEvent is the closure-free user visit-loop handler; arg is the user's
// index. The visit loop is the highest-volume periodic loop in every
// TTL-family run, so its rescheduling must not allocate.
func visitEvent(_ *sim.Engine, recv any, arg int64) {
	m := recv.(*explicitUsers)
	m.visit(m.users[arg])
}

// visit performs one end-user request and reschedules the next.
func (m *explicitUsers) visit(u *user) {
	s := m.s
	target := m.routeVisit(u)
	nd := s.nodes[target]
	s.accountVisits(nd, 1)

	switch {
	case nd.down:
		// The server is dead: the request fails. Without Failover a
		// DNS-routed user waits for its cached entry to expire and a
		// pinned user keeps failing, matching the paper's observation
		// that cached IPs of failed servers keep attracting requests
		// (Section 3.4.5). With Failover the user reacts immediately.
		s.cell(target).failedVisits++
		u.agg.lastFailed = true
		if s.cfg.Failover {
			m.failoverUser(u)
		}
	case s.fedStaleDenied(target):
		// The server has served stale content under all-providers-down
		// degradation for longer than the federation staleness cap: the
		// visit fails rather than serve arbitrarily old content.
		s.cell(target).failedVisits++
		u.agg.lastFailed = true
		if s.cfg.Failover {
			m.failoverUser(u)
		}
	case nd.auto != nil && nd.auto.OnVisit():
		// First visit after an invalidation under the self-adaptive
		// method: the server polls, switches back to TTL, and the user
		// receives the fresh content when it lands.
		s.selfAdaptiveVisitPoll(target, func() {
			s.observeAgg(target, &u.agg, 1, s.nodes[target].version)
		})
	case s.cfg.Method == consistency.MethodInvalidation && !nd.valid:
		// Invalidation: the visit triggers the fetch; the user waits
		// for the refreshed content.
		s.triggerFetch(target, func() {
			s.observeAgg(target, &u.agg, 1, s.nodes[target].version)
		})
	case s.cfg.Method == consistency.MethodRegime:
		if nd.rc != nil {
			nd.rc.ObserveVisit(s.now(target))
		}
		if !nd.valid {
			s.triggerFetch(target, func() {
				s.observeAgg(target, &u.agg, 1, s.nodes[target].version)
			})
		} else {
			s.observeAgg(target, &u.agg, 1, nd.version)
		}
	case s.cfg.Method == consistency.MethodLease && !s.leaseValid(target):
		// Cooperative lease expired: the visit renews it, and the user
		// receives the refreshed content with the new lease.
		s.renewLease(target, func() {
			s.observeAgg(target, &u.agg, 1, s.nodes[target].version)
		})
	default:
		s.observeAgg(target, &u.agg, 1, nd.version)
	}

	s.cell(u.homeSrv).eng.ScheduleAfterFunc(u.period, visitEvent, m, int64(u.idx))
}

// routeVisit picks the serving server for this visit.
func (m *explicitUsers) routeVisit(u *user) int {
	s := m.s
	switch {
	case u.resolver != nil:
		// DNS routing is serial-only (gated in withDefaults), so the home
		// cell is the one cell.
		c := s.cell(u.homeSrv)
		target, _ := u.resolver.Lookup(c.eng.Now())
		c.dnsVisits++
		if u.lastServer >= 0 && target != u.lastServer {
			c.dnsRedirects++
		}
		u.lastServer = target
		return target
	case s.cfg.UserSwitchEveryVisit && len(s.nodes) > 2:
		return 1 + s.rng(u.homeSrv).Intn(len(s.nodes)-1)
	default:
		return u.homeSrv
	}
}

// failoverUser reacts to a failed visit: a DNS-routed user flushes its
// resolver cache so the next lookup re-resolves at the authoritative DNS
// (which skips dead servers); a pinned user re-homes to the nearest live
// server — the DNS re-resolution a real client performs after connection
// failures, collapsed into one step.
func (m *explicitUsers) failoverUser(u *user) {
	s := m.s
	if u.resolver != nil {
		u.resolver.Flush()
		s.cell(u.homeSrv).userFailovers++
		return
	}
	if s.cfg.UserSwitchEveryVisit {
		return // the next visit picks a random server anyway
	}
	if best := s.nearestLive(u.homeSrv, u.loc); best > 0 {
		s.cell(u.homeSrv).userFailovers++
		u.homeSrv = best
	}
}

func (m *explicitUsers) collect(res *Result) {
	for _, u := range m.users {
		res.UserAvgInconsistency = append(res.UserAvgInconsistency, u.agg.avg())
		res.UserObservations += u.agg.observations
		res.UserInconsistentObservations += u.agg.inconsistent
		if u.agg.lastFailed {
			res.StrandedUsers++
		}
	}
}

func (m *explicitUsers) totalUsers() int { return len(m.users) }

func (m *explicitUsers) audit() *audit.Violation {
	for _, u := range m.users {
		if v := audit.CheckCount(fmt.Sprintf("user %d inconsistent observations", u.idx),
			u.agg.inconsistent, u.agg.observations); v != nil {
			return v
		}
		if v := audit.CheckSeries(fmt.Sprintf("user %d catchupSum", u.idx), []float64{u.agg.catchupSum}); v != nil {
			v.Server = -1
			return v
		}
	}
	return nil
}
