package cdn

import (
	"time"

	"cdnconsistency/internal/consistency"
	"cdnconsistency/internal/dns"
	"cdnconsistency/internal/geo"
)

// scheduleUsers creates the end-users attached to each server and their
// periodic visit loops. Users start at random offsets in [0, UserStartMax]
// as in the paper's Section 4 setup. Under DNS routing each user owns a
// local resolver; otherwise it is pinned to its home server (or switches
// randomly per visit in the Figure 24 scenario).
func (s *simulation) scheduleUsers() {
	for si := range s.topo.Servers {
		for ui := range s.topo.Users[si] {
			u := &user{idx: len(s.users), homeSrv: si + 1, lastServer: -1, loc: s.topo.Users[si][ui].Loc}
			if s.cfg.UseDNSRouting {
				resolver, err := dns.NewResolver(s.auth, s.topo.Users[si][ui].Loc, s.cfg.ResolverTTL)
				if err == nil {
					u.resolver = resolver
				}
			}
			s.users = append(s.users, u)
			offset := time.Duration(s.eng.Rand().Int63n(int64(s.cfg.UserStartMax)))
			s.eng.ScheduleAfterFunc(offset, visitEvent, s, int64(u.idx))
		}
	}
}

// visit performs one end-user request and reschedules the next.
func (s *simulation) visit(u *user) {
	target := s.routeVisit(u)
	nd := s.nodes[target]

	switch {
	case nd.down:
		// The server is dead: the request fails. Without Failover a
		// DNS-routed user waits for its cached entry to expire and a
		// pinned user keeps failing, matching the paper's observation
		// that cached IPs of failed servers keep attracting requests
		// (Section 3.4.5). With Failover the user reacts immediately.
		s.failedVisits++
		if s.cfg.Failover {
			s.failoverUser(u)
		}
	case nd.auto != nil && nd.auto.OnVisit():
		// First visit after an invalidation under the self-adaptive
		// method: the server polls, switches back to TTL, and the user
		// receives the fresh content when it lands.
		s.selfAdaptiveVisitPoll(target, func() {
			s.observe(u, s.nodes[target].version)
		})
	case s.cfg.Method == consistency.MethodInvalidation && !nd.valid:
		// Invalidation: the visit triggers the fetch; the user waits
		// for the refreshed content.
		s.triggerFetch(target, func() {
			s.observe(u, s.nodes[target].version)
		})
	case s.cfg.Method == consistency.MethodRegime:
		if nd.rc != nil {
			nd.rc.ObserveVisit(s.eng.Now())
		}
		if !nd.valid {
			s.triggerFetch(target, func() {
				s.observe(u, s.nodes[target].version)
			})
		} else {
			s.observe(u, nd.version)
		}
	case s.cfg.Method == consistency.MethodLease && !s.leaseValid(target):
		// Cooperative lease expired: the visit renews it, and the user
		// receives the refreshed content with the new lease.
		s.renewLease(target, func() {
			s.observe(u, s.nodes[target].version)
		})
	default:
		s.observe(u, nd.version)
	}

	s.eng.ScheduleAfterFunc(s.cfg.UserTTL, visitEvent, s, int64(u.idx))
}

// routeVisit picks the serving server for this visit.
func (s *simulation) routeVisit(u *user) int {
	switch {
	case u.resolver != nil:
		target, _ := u.resolver.Lookup(s.eng.Now())
		s.dnsVisits++
		if u.lastServer >= 0 && target != u.lastServer {
			s.dnsRedirects++
		}
		u.lastServer = target
		return target
	case s.cfg.UserSwitchEveryVisit && len(s.nodes) > 2:
		return 1 + s.eng.Rand().Intn(len(s.nodes)-1)
	default:
		return u.homeSrv
	}
}

// failoverUser reacts to a failed visit: a DNS-routed user flushes its
// resolver cache so the next lookup re-resolves at the authoritative DNS
// (which skips dead servers); a pinned user re-homes to the nearest live
// server — the DNS re-resolution a real client performs after connection
// failures, collapsed into one step.
func (s *simulation) failoverUser(u *user) {
	if u.resolver != nil {
		u.resolver.Flush()
		s.userFailovers++
		return
	}
	if s.cfg.UserSwitchEveryVisit {
		return // the next visit picks a random server anyway
	}
	best, bestD := -1, 0.0
	for i := 1; i < len(s.nodes); i++ {
		if s.nodes[i].down {
			continue
		}
		d := geo.DistanceKm(u.loc, s.locs[i])
		if best == -1 || d < bestD {
			best, bestD = i, d
		}
	}
	if best > 0 {
		u.homeSrv = best
		s.userFailovers++
	}
}

// observe records what the user saw: catch-up delays for newly seen updates
// and the self-inconsistency counter (content older than previously seen,
// the Figure 24 metric), plus the stale-serve counter against the newest
// published snapshot.
func (s *simulation) observe(u *user, v int) {
	u.observations++
	if v < s.published {
		s.staleObservations++
	}
	if v < u.maxSeen {
		u.inconsistent++
		return
	}
	if v > u.maxSeen {
		now := s.eng.Now()
		for id := u.maxSeen + 1; id <= v && id < len(s.publishAt); id++ {
			if at := s.publishAt[id]; at > 0 && now >= at {
				u.catchupSum += (now - at).Seconds()
				u.catchupN++
			}
		}
		u.maxSeen = v
	}
}
