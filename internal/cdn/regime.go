package cdn

import (
	"fmt"
	"time"

	"cdnconsistency/internal/consistency"
	"cdnconsistency/internal/netmodel"
)

// MethodRegime: each server runs a consistency.RegimeController fed by its
// own visit stream and observed update arrivals, re-deciding its regime
// every control epoch (one server TTL) and registering the choice with the
// provider:
//
//	RegimePush:         the provider pushes every update to the server.
//	RegimeInvalidation: the provider sends one aggregated invalidation;
//	                    the next visit fetches and re-arms it.
//	RegimeTTL:          the server polls on its TTL.

// scheduleRegimeLoops starts each server in the TTL regime with its
// controller and control-epoch timer. A controller construction failure
// aborts the run: silently skipping the server would leave it without any
// consistency loop at all.
func (s *simulation) scheduleRegimeLoops() error {
	for _, nd := range s.nodes[1:] {
		rc, err := consistency.NewRegimeController(consistency.RegimeConfig{})
		if err != nil {
			return fmt.Errorf("cdn: regime controller for server %d: %w", nd.idx, err)
		}
		nd.rc = rc
		nd.regime = consistency.RegimeTTL
		i := nd.idx
		offset := time.Duration(s.rng(i).Int63n(int64(s.cfg.ServerTTL)))
		s.at(i, offset, func() { s.pollParent(i) })
		s.at(i, offset+s.cfg.ServerTTL, func() { s.regimeEpoch(i) })
	}
	return nil
}

// regimeEpoch re-evaluates one server's regime and reschedules itself.
func (s *simulation) regimeEpoch(i int) {
	nd := s.nodes[i]
	if nd.down {
		return
	}
	gen := nd.gen
	if nd.rc.Decide() {
		next := nd.rc.Regime()
		nd.regime = next
		// Register the new regime with the provider. A dark provider loses
		// the registration and keeps serving the last regime it heard.
		s.deliver(i, 0, s.cfg.LightSizeKB, netmodel.ClassLight, func() {
			if s.providerDown {
				return
			}
			s.applyRegime(i, next)
		})
		switch next {
		case consistency.RegimeTTL:
			if nd.pollStopped {
				nd.pollStopped = false
				s.pollAfter(i, s.cfg.ServerTTL)
			}
		default:
			// Push and Invalidation regimes stop the poll loop; the
			// in-flight poll (if any) notices via nd.regime.
			nd.pollStopped = true
			s.armWatchdog(i)
		}
	}
	s.at(i, s.now(i)+s.cfg.ServerTTL, func() {
		if nd.down || nd.gen != gen {
			return
		}
		s.regimeEpoch(i)
	})
}

// applyRegime updates the provider's per-server registries.
func (s *simulation) applyRegime(i int, r consistency.Regime) {
	p := s.nodes[0]
	if p.pushSubs == nil {
		p.pushSubs = make(map[int]bool)
	}
	if p.subscribers == nil {
		p.subscribers = make(map[int]bool)
	}
	delete(p.pushSubs, i)
	delete(p.subscribers, i)
	switch r {
	case consistency.RegimePush:
		p.pushSubs[i] = true
	case consistency.RegimeInvalidation:
		p.subscribers[i] = false // pending notification on the next update
	}
}

// regimePublish disseminates a fresh update under MethodRegime: pushes to
// push-regime servers and (aggregated) invalidations to invalidation-regime
// servers. TTL-regime servers find it on their next poll.
func (s *simulation) regimePublish() {
	provider := s.nodes[0]
	v := provider.version
	for _, sub := range sortedKeys(provider.pushSubs) {
		child := sub
		s.deliver(0, child, s.cfg.UpdateSizeKB, netmodel.ClassUpdate, func() {
			nd := s.nodes[child]
			if nd.down || v <= nd.version {
				return
			}
			s.setVersion(nd, v)
			if nd.rc != nil {
				nd.rc.ObserveUpdate(s.now(child))
			}
		})
	}
	s.notifySubscribers(provider)
}
