package cdn

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"cdnconsistency/internal/audit"
	"cdnconsistency/internal/consistency"
	"cdnconsistency/internal/geo"
	"cdnconsistency/internal/netmodel"
	"cdnconsistency/internal/sim"
)

// This file holds the sharded-execution substrate: the per-cell state, the
// static topology partition, and the node-routed accessors every protocol
// path uses. A serial run is the degenerate case of exactly one cell holding
// every node — the same code executes, on the classic single engine.
//
// The partition rule keeps all protocol traffic except provider<->cell
// exchanges inside one cell: the indivisible units ("atoms") are the
// top-level communication subtrees — each child subtree of the update tree's
// root (a single server under the unicast star, a relay subtree under
// multicast, a supernode cluster under hybrid), or each flooding cluster
// under broadcast. Atoms are sorted by distance from the provider and packed
// into cells in distance bands, so cross-cell node pairs are geographically
// separated and the conservative lookahead — the minimum network propagation
// delay over all cross-cell pairs — stays as large as the partition allows.
// User failover re-homes within the dead server's cell (the regional
// catchment an anycast CDN would fail over inside), so a user's entire
// lifetime stays in one cell.

// maxEventsPerCell is the runaway-simulation backstop, per cell.
const maxEventsPerCell = 200_000_000

// cellState is one partition cell's execution state: its engine, its own
// view of the network (jitter/loss draws come from the cell's RNG; each
// message is booked in its sender's cell), and the run counters its nodes
// accumulate. Counters are merged in cell order when the run ends.
type cellState struct {
	eng *sim.Engine
	net *netmodel.Network

	// published is the id of the newest snapshot published so far.
	// Publication times are a static schedule, so every cell advances its
	// own copy with a local marker event at each publication instant — the
	// stale-serve comparison needs no cross-cell read.
	published int

	dnsRedirects int
	dnsVisits    int

	updateMsgsToServers    int
	updateMsgsFromProvider int
	lightMsgs              int

	crashes           int
	recoveries        int
	recoverySeconds   []float64
	failedVisits      int
	userFailovers     int
	serverReparents   int
	ttlFallbacks      int
	staleObservations int
	visitsAccounted   int

	deliverAttempts int
	deliverSends    int
	deliverDrops    map[string]int

	// Federation counters (serial-only; always zero in cells > 0).
	degradedSeconds  float64
	degradedEnters   int
	degradedExits    int
	providerSwitches int
	peerHandoffs     int

	// Cell-local auditor observations, written only by the goroutine running
	// this cell mid-window and drained by the coordinator at the next window
	// barrier (sharded runs only; serial runs audit inline).
	audDelayViol   *audit.Violation
	audPendingTree int
	audTreeWhere   string
}

// sharded reports whether this run executes under the window barrier.
func (s *simulation) sharded() bool { return s.shEng != nil }

// cell returns the cell that owns node i.
func (s *simulation) cell(i int) *cellState { return s.cells[s.cellOf[i]] }

// now is node i's cell-local clock. Within one window, cells advance
// independently; an event handler must only read the clock of the cell it
// runs in.
func (s *simulation) now(i int) time.Duration { return s.cell(i).eng.Now() }

// rng is node i's cell-local randomness stream.
func (s *simulation) rng(i int) *rand.Rand { return s.cell(i).eng.Rand() }

// at schedules f at absolute time t in node i's cell. It rides the engine's
// thunk path, so the engine side of every protocol continuation is
// allocation-free (f itself may still be a closure).
func (s *simulation) at(i int, t time.Duration, f func()) {
	s.cell(i).eng.ScheduleAtCall(t, f) //nolint:errcheck // t >= now by construction
}

// eachNet schedules f against every cell's network view at time t.
// Partition and overload faults must be visible to every sender, so each
// cell applies them locally at the fault instant — in serial that is the one
// event the classic engine always scheduled.
func (s *simulation) eachNet(t time.Duration, f func(*netmodel.Network)) {
	for _, c := range s.cells {
		c := c
		c.eng.ScheduleAtCall(t, func() { f(c.net) }) //nolint:errcheck // t >= 0 by construction
	}
}

// initCells builds the execution cells. Serial runs get one cell with the
// classic engine seeded directly from cfg.Seed (bit-identical to the
// pre-sharding engine); sharded runs partition the topology and derive each
// cell's RNG from (Seed, cell) via the sharded engine.
func (s *simulation) initCells() error {
	if s.cfg.Shards <= 0 {
		eng := sim.NewEngine(s.cfg.Seed)
		eng.SetMaxEvents(maxEventsPerCell)
		net, err := netmodel.New(s.cfg.Net, eng.Rand())
		if err != nil {
			return fmt.Errorf("cdn: %w", err)
		}
		s.cells = []*cellState{{eng: eng, net: net}}
		s.cellOf = make([]int, len(s.nodes))
		return nil
	}
	cellOf, n, lookahead, err := s.partitionCells()
	if err != nil {
		return err
	}
	sh, err := sim.NewSharded(sim.ShardedConfig{
		Seed:             s.cfg.Seed,
		Cells:            n,
		Lookahead:        lookahead,
		Workers:          s.cfg.Shards,
		MaxEventsPerCell: maxEventsPerCell,
		AdaptiveWindow:   !s.cfg.ShardStaticWindows,
	})
	if err != nil {
		return fmt.Errorf("cdn: %w", err)
	}
	s.shEng = sh
	s.cellOf = cellOf
	for i := 0; i < n; i++ {
		net, err := netmodel.New(s.cfg.Net, sh.Cell(i).Rand())
		if err != nil {
			return fmt.Errorf("cdn: %w", err)
		}
		s.cells = append(s.cells, &cellState{eng: sh.Cell(i), net: net})
	}
	return nil
}

// partitionAtoms returns the indivisible node groups of the partition, each
// with its communication root first. All intra-atom traffic stays inside one
// cell by construction; only provider<->atom traffic can cross cells.
func (s *simulation) partitionAtoms() [][]int {
	if s.cfg.Infra == consistency.InfraBroadcast {
		// Flooding stays within a cluster; the provider seeds each cluster
		// through its first member.
		atoms := make([][]int, 0, len(s.clusterMembers))
		for _, members := range s.clusterMembers {
			if len(members) > 0 {
				atoms = append(atoms, members)
			}
		}
		return atoms
	}
	var atoms [][]int
	for _, r := range s.tree.Children(0) {
		var atom []int
		var walk func(int)
		walk = func(i int) {
			atom = append(atom, i)
			for _, c := range s.tree.Children(i) {
				walk(c)
			}
		}
		walk(r)
		atoms = append(atoms, atom)
	}
	return atoms
}

// partitionCells computes the static node->cell assignment and the
// conservative lookahead. The assignment is a pure function of the topology
// and ShardCells — never of Shards — so it is identical across worker
// counts, which is what makes worker-count invariance exact.
func (s *simulation) partitionCells() ([]int, int, time.Duration, error) {
	atoms := s.partitionAtoms()
	if len(atoms) == 0 {
		return nil, 0, 0, fmt.Errorf("cdn: sharded run needs at least one server")
	}
	want := s.cfg.ShardCells
	if want > len(atoms) {
		want = len(atoms)
	}

	// Distance-band the atoms: nearest atoms share the provider's cell, so
	// the smallest provider<->server delays never become cross-cell bounds.
	providerLoc := s.nodes[0].ep.Loc
	sort.Slice(atoms, func(i, j int) bool {
		di := geo.DistanceKm(providerLoc, s.nodes[atoms[i][0]].ep.Loc)
		dj := geo.DistanceKm(providerLoc, s.nodes[atoms[j][0]].ep.Loc)
		if di != dj {
			return di < dj
		}
		return atoms[i][0] < atoms[j][0]
	})
	cellOf := make([]int, len(s.nodes))
	per := (len(s.nodes) - 1 + want - 1) / want
	cellIdx, inCell := 0, 0
	for _, atom := range atoms {
		if inCell >= per && cellIdx < want-1 {
			cellIdx++
			inCell = 0
		}
		for _, nd := range atom {
			cellOf[nd] = cellIdx
		}
		inCell += len(atom)
	}
	n := cellIdx + 1

	// The lookahead is the minimum propagation delay over every cross-cell
	// node pair — not just pairs that exchange protocol messages — so its
	// safety needs no per-method reasoning. netmodel guarantees every
	// arrival is at least PropagationDelay after the send (queuing, jitter,
	// overload, and loss only add), and BaseDelay keeps the bound positive
	// even for co-located endpoints.
	probe, err := netmodel.New(s.cfg.Net, nil)
	if err != nil {
		return nil, 0, 0, fmt.Errorf("cdn: %w", err)
	}
	var lookahead time.Duration
	for i := 0; i < len(s.nodes); i++ {
		for j := i + 1; j < len(s.nodes); j++ {
			if cellOf[i] == cellOf[j] {
				continue
			}
			if d := probe.PropagationDelay(s.nodes[i].ep, s.nodes[j].ep); lookahead == 0 || d < lookahead {
				lookahead = d
			}
		}
	}
	if lookahead == 0 {
		// Single-cell partition (tiny topology): the barrier never
		// exchanges anything, any positive window length works.
		lookahead = probe.PropagationDelay(s.nodes[0].ep, s.nodes[0].ep)
	}
	return cellOf, n, lookahead, nil
}

// mergeCellTallies folds the per-cell counters into the result, in cell
// order. With one cell this is a plain copy of the serial counters.
func (s *simulation) mergeCellTallies(res *Result) {
	for _, c := range s.cells {
		res.UpdateMsgsToServers += c.updateMsgsToServers
		res.UpdateMsgsFromProvider += c.updateMsgsFromProvider
		res.LightMsgs += c.lightMsgs
		res.DNSRedirects += c.dnsRedirects
		res.DNSVisits += c.dnsVisits
		res.Crashes += c.crashes
		res.Recoveries += c.recoveries
		res.RecoverySeconds = append(res.RecoverySeconds, c.recoverySeconds...)
		res.FailedVisits += c.failedVisits
		res.UserFailovers += c.userFailovers
		res.ServerReparents += c.serverReparents
		res.TTLFallbacks += c.ttlFallbacks
		res.StaleObservations += c.staleObservations
		res.DegradedSeconds += c.degradedSeconds
		res.DegradedEnters += c.degradedEnters
		res.DegradedExits += c.degradedExits
		res.ProviderSwitches += c.providerSwitches
		res.PeerHandoffs += c.peerHandoffs
	}
}
