package cdn

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"

	"cdnconsistency/internal/audit"
	"cdnconsistency/internal/consistency"
	"cdnconsistency/internal/fault"
	"cdnconsistency/internal/topology"
	"cdnconsistency/internal/workload"
)

// auditTestConfig is a short, small run (so the scenario matrix stays fast)
// with the full failover machinery on — the state the auditor has to certify
// is exactly the state the fault reactions mutate.
func auditTestConfig(t *testing.T, method consistency.Method, infra consistency.Infra) Config {
	t.Helper()
	game := workload.GameConfig{
		Phases: []workload.Phase{
			{Name: "p", Duration: 3 * time.Minute, MeanGap: 20 * time.Second},
			{Name: "b", Duration: 2 * time.Minute, MeanGap: 0},
			{Name: "p2", Duration: 3 * time.Minute, MeanGap: 20 * time.Second},
		},
		SizeKB: 1,
	}
	updates, err := workload.Schedule(game, 42)
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Method:     method,
		Infra:      infra,
		Topology:   topology.Config{Servers: 40, UsersPerServer: 1, Seed: 11},
		Clusters:   5,
		Updates:    updates,
		Seed:       11,
		RepairTree: true,
		Failover:   true,
		Audit:      &AuditOptions{Cadence: time.Second}, // max practical cadence
	}
}

// Every named fault scenario, with failover reactions enabled and the auditor
// sweeping at maximum cadence, must complete with zero violations: the fault
// machinery may degrade the metrics but never the bookkeeping.
func TestAuditCleanAcrossFaultScenarios(t *testing.T) {
	for _, name := range fault.ScenarioNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			spec, err := fault.Scenario(name)
			if err != nil {
				t.Fatal(err)
			}
			cfg := auditTestConfig(t, consistency.MethodTTL, consistency.InfraMulticast)
			cfg.Faults = &spec
			res, err := Run(cfg)
			if err != nil {
				t.Fatalf("audited %s run failed: %v", name, err)
			}
			if res.AuditChecks == 0 {
				t.Fatal("auditor never ran")
			}
		})
	}
}

// The same zero-violation requirement across methods and infrastructures
// under the mixed scenario (the one composing crashes, a provider outage,
// and a partition).
func TestAuditCleanAcrossMethods(t *testing.T) {
	cases := []struct {
		method consistency.Method
		infra  consistency.Infra
	}{
		{consistency.MethodPush, consistency.InfraUnicast},
		{consistency.MethodPush, consistency.InfraMulticast},
		{consistency.MethodInvalidation, consistency.InfraHybrid},
		{consistency.MethodSelfAdaptive, consistency.InfraUnicast},
		{consistency.MethodAdaptiveTTL, consistency.InfraMulticast},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(fmt.Sprintf("%v-%v", tc.method, tc.infra), func(t *testing.T) {
			t.Parallel()
			spec, err := fault.Scenario("mixed")
			if err != nil {
				t.Fatal(err)
			}
			cfg := auditTestConfig(t, tc.method, tc.infra)
			cfg.Faults = &spec
			res, err := Run(cfg)
			if err != nil {
				t.Fatalf("audited run failed: %v", err)
			}
			if res.AuditChecks == 0 {
				t.Fatal("auditor never ran")
			}
		})
	}
}

// The auditor must be a pure observer: every reported metric is identical
// with auditing on or off. Only the processed-event count may differ (sweeps
// are engine events).
func TestAuditDoesNotPerturbMetrics(t *testing.T) {
	spec, err := fault.Scenario("churn")
	if err != nil {
		t.Fatal(err)
	}
	mk := func(auditOn bool) *Result {
		cfg := auditTestConfig(t, consistency.MethodTTL, consistency.InfraMulticast)
		cfg.Faults = &spec
		if !auditOn {
			cfg.Audit = nil
		}
		return mustRun(t, cfg)
	}
	on, off := mk(true), mk(false)
	if fmt.Sprint(on.ServerAvgInconsistency) != fmt.Sprint(off.ServerAvgInconsistency) {
		t.Error("server inconsistency differs with auditing on")
	}
	if fmt.Sprint(on.UserAvgInconsistency) != fmt.Sprint(off.UserAvgInconsistency) {
		t.Error("user inconsistency differs with auditing on")
	}
	if on.Accounting.Total() != off.Accounting.Total() {
		t.Errorf("accounting differs: %+v vs %+v", on.Accounting.Total(), off.Accounting.Total())
	}
	if on.Crashes != off.Crashes || on.Recoveries != off.Recoveries ||
		on.ServerReparents != off.ServerReparents || on.StaleObservations != off.StaleObservations {
		t.Error("robustness counters differ with auditing on")
	}
	if on.Events <= off.Events {
		t.Errorf("audited run processed %d events, unaudited %d — sweeps missing", on.Events, off.Events)
	}
}

// Mutation tests: seed a deliberate accounting bug mid-run and require the
// auditor to catch it, report the right property, and abort the run. This is
// the auditor's own regression suite — a predicate that silently stopped
// checking would pass every clean-run test above.
func TestAuditorCatchesSeededCorruption(t *testing.T) {
	cases := []struct {
		name     string
		corrupt  func(s *simulation)
		property string
	}{
		{
			name:     "negative catch-up sum",
			corrupt:  func(s *simulation) { s.nodes[5].catchupSum = -1 },
			property: "series-nonnegative",
		},
		{
			name:     "version beyond published",
			corrupt:  func(s *simulation) { s.nodes[3].version = s.cells[0].published + 7 },
			property: "version-bounds",
		},
		{
			name:     "version regression",
			corrupt:  func(s *simulation) { s.nodes[3].version = 0 },
			property: "version-monotonic",
		},
		{
			name:     "negative message counter",
			corrupt:  func(s *simulation) { s.cells[0].updateMsgsToServers = -5 },
			property: "counter-nonnegative",
		},
		{
			name:     "unaccounted delivery attempt",
			corrupt:  func(s *simulation) { s.cells[0].deliverAttempts++ },
			property: "delivery-conservation",
		},
		{
			name: "down node counted live",
			corrupt: func(s *simulation) {
				s.nodes[7].down = true
				s.alive[7] = true
			},
			property: "liveness-bookkeeping",
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			cfg := auditTestConfig(t, consistency.MethodTTL, consistency.InfraUnicast)
			cfg, err := cfg.withDefaults()
			if err != nil {
				t.Fatal(err)
			}
			s, err := newSimulation(cfg)
			if err != nil {
				t.Fatal(err)
			}
			// Let the run warm up (versions advance, counters move), then
			// corrupt one piece of state behind the simulation's back.
			s.at(0, 4*time.Minute, func() { tc.corrupt(s) })
			_, err = s.run()
			var v *audit.Violation
			if !errors.As(err, &v) {
				t.Fatalf("corrupted run returned %v, want an audit violation", err)
			}
			if v.Property != tc.property {
				t.Errorf("caught property %q, want %q (violation: %v)", v.Property, tc.property, v)
			}
			if v.Time < 4*time.Minute {
				t.Errorf("violation stamped at %v, before the corruption at 4m", v.Time)
			}
		})
	}
}

// Sharded runs drive the auditor from window barriers instead of engine
// events. Three things must hold at once, across every fault scenario: the
// audited run completes with zero violations, it is worker-count invariant
// like any other sharded run, and — because barrier sweeps add no engine
// events — its Result is bit-identical to the unaudited run, Events included.
func TestShardedAuditMatrix(t *testing.T) {
	scenarios := append([]string{""}, fault.ScenarioNames()...)
	const seed = 3
	pop := equivPopulation(t, 12, 110, seed)
	for _, scenario := range scenarios {
		name := scenario
		if name == "" {
			name = "none"
		}
		scenario := scenario
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			mk := func(shards int, auditOn bool) *Result {
				cfg := shardConfig(t, consistency.MethodTTL, consistency.InfraUnicast, seed, pop, scenario, shards, 8)
				cfg.UserModel = UserModelCohort
				if auditOn {
					cfg.Audit = &AuditOptions{Cadence: time.Second}
				}
				return mustRun(t, cfg)
			}
			plain, aud1, aud4 := mk(4, false), mk(1, true), mk(4, true)
			if aud4.AuditChecks == 0 {
				t.Fatal("sharded auditor never ran")
			}
			if !reflect.DeepEqual(aud1, aud4) {
				t.Errorf("audited sharded run not worker-count invariant:\n  1 worker: %+v\n  4 workers: %+v", aud1, aud4)
			}
			stripped := *aud4
			stripped.AuditChecks = 0
			if !reflect.DeepEqual(plain, &stripped) {
				t.Errorf("auditing perturbed the sharded run:\n  off: %+v\n  on:  %+v", plain, &stripped)
			}
		})
	}
}

// AuditOptions.SelfTest arms one named, deliberate corruption mid-run; the run
// must then fail with exactly the matching property, in both execution modes.
// This is the operator-facing end-to-end proof that the tripwire is live —
// the in-process analogue of TestAuditorCatchesSeededCorruption.
func TestAuditSelfTest(t *testing.T) {
	const seed = 3
	pop := equivPopulation(t, 12, 110, seed)
	cases := []struct{ name, property string }{
		{"version-bounds", "version-bounds"},
		{"counter-negative", "counter-nonnegative"},
		{"delivery-conservation", "delivery-conservation"},
	}
	modes := []struct {
		name          string
		shards, cells int
	}{{"serial", 0, 0}, {"sharded", 4, 8}}
	for _, mode := range modes {
		for _, tc := range cases {
			mode, tc := mode, tc
			t.Run(mode.name+"/"+tc.name, func(t *testing.T) {
				t.Parallel()
				cfg := shardConfig(t, consistency.MethodTTL, consistency.InfraUnicast, seed, pop, "", mode.shards, mode.cells)
				cfg.UserModel = UserModelCohort
				cfg.Audit = &AuditOptions{Cadence: time.Second, SelfTest: tc.name}
				_, err := Run(cfg)
				var v *audit.Violation
				if !errors.As(err, &v) {
					t.Fatalf("self-test %q returned %v, want an audit violation", tc.name, err)
				}
				if v.Property != tc.property {
					t.Errorf("self-test %q tripped property %q, want %q (%v)", tc.name, v.Property, tc.property, v)
				}
			})
		}
	}
}

// An unknown self-test name is a configuration error, not a silent no-op: a
// typo must never let a run that was supposed to prove the tripwire pass.
func TestAuditSelfTestValidation(t *testing.T) {
	cfg := auditTestConfig(t, consistency.MethodTTL, consistency.InfraUnicast)
	cfg.Audit = &AuditOptions{SelfTest: "bogus"}
	if _, err := Run(cfg); err == nil {
		t.Fatal("unknown audit self-test name accepted")
	}
}

// The per-event delay bound fires on a delay beyond the fault-free regime
// maximum, and the bound is disabled (never a false positive) once faults are
// configured.
func TestAuditorDelayBound(t *testing.T) {
	cfg := auditTestConfig(t, consistency.MethodTTL, consistency.InfraUnicast)
	cfg, err := cfg.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	s, err := newSimulation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.run(); err != nil {
		t.Fatal(err)
	}
	if s.aud.delayBound <= 0 {
		t.Fatal("fault-free TTL run has no delay bound")
	}
	s.aud.onDelay(3, s.aud.delayBound+time.Hour)
	if v := s.aud.violation; v == nil || v.Property != "delay-bounded" {
		t.Errorf("oversized delay not flagged: %v", v)
	}

	spec, err := fault.Scenario("outage")
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := auditTestConfig(t, consistency.MethodTTL, consistency.InfraUnicast)
	cfg2.Faults = &spec
	cfg2, err = cfg2.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	s2, err := newSimulation(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s2.run(); err != nil {
		t.Fatal(err)
	}
	if s2.aud.delayBound != 0 {
		t.Errorf("faulty run kept strict delay bound %v; an outage legitimately exceeds it", s2.aud.delayBound)
	}
}

// Cancelling the run's context aborts it promptly with the context's error.
func TestRunHonorsContextCancellation(t *testing.T) {
	cfg := auditTestConfig(t, consistency.MethodTTL, consistency.InfraMulticast)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg.Ctx = ctx
	if _, err := Run(cfg); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled run returned %v, want context.Canceled", err)
	}
}

// The OnTick probe observes monotone progress through the run.
func TestRunOnTickProbe(t *testing.T) {
	cfg := auditTestConfig(t, consistency.MethodTTL, consistency.InfraUnicast)
	cfg.Audit = nil
	var calls int
	var lastNow time.Duration
	var lastEvents uint64
	cfg.OnTick = func(now time.Duration, events uint64) {
		if now < lastNow || events <= lastEvents && calls > 0 {
			t.Fatalf("tick ran backwards: now %v->%v events %d->%d", lastNow, now, lastEvents, events)
		}
		lastNow, lastEvents = now, events
		calls++
	}
	res := mustRun(t, cfg)
	if calls == 0 {
		t.Fatal("tick probe never ran")
	}
	if lastEvents > res.Events {
		t.Errorf("probe saw %d events, result reports %d", lastEvents, res.Events)
	}
}
