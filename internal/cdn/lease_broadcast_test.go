package cdn

import (
	"testing"
	"time"

	"cdnconsistency/internal/consistency"
)

func TestLeaseRequiresUnicast(t *testing.T) {
	for _, infra := range []consistency.Infra{consistency.InfraMulticast, consistency.InfraHybrid} {
		cfg := baseConfig(t, consistency.MethodLease, infra)
		if _, err := Run(cfg); err == nil {
			t.Errorf("Lease on %v accepted", infra)
		}
	}
}

func TestBroadcastRequiresPush(t *testing.T) {
	for _, m := range []consistency.Method{consistency.MethodTTL, consistency.MethodInvalidation, consistency.MethodSelfAdaptive} {
		cfg := baseConfig(t, m, consistency.InfraBroadcast)
		if _, err := Run(cfg); err == nil {
			t.Errorf("%v on Broadcast accepted", m)
		}
	}
}

func TestLeaseRuns(t *testing.T) {
	cfg := baseConfig(t, consistency.MethodLease, consistency.InfraUnicast)
	cfg.LeaseDuration = 60 * time.Second
	res := mustRun(t, cfg)
	if len(res.ServerAvgInconsistency) != 80 {
		t.Fatalf("server stats = %d", len(res.ServerAvgInconsistency))
	}
	if res.UpdateMsgsToServers == 0 {
		t.Fatal("no update messages under lease")
	}
}

// While content is hot (visits every ~5s per server vs 60s leases), leases
// stay renewed and the method behaves like Push: near-zero staleness.
func TestLeaseNearPushConsistencyWhenHot(t *testing.T) {
	lease := mustRun(t, baseConfig(t, consistency.MethodLease, consistency.InfraUnicast))
	ttl := mustRun(t, baseConfig(t, consistency.MethodTTL, consistency.InfraUnicast))
	if l := lease.MeanServerInconsistency(); l > 5 {
		t.Errorf("lease staleness = %.2fs, want near-push", l)
	}
	if lease.MeanServerInconsistency() >= ttl.MeanServerInconsistency() {
		t.Errorf("lease (%.2fs) not better than TTL (%.2fs)",
			lease.MeanServerInconsistency(), ttl.MeanServerInconsistency())
	}
}

// With no visits, leases expire and pushes stop — unlike plain Push, the
// provider does not waste messages on idle replicas.
func TestLeaseSavesMessagesWhenIdle(t *testing.T) {
	mk := func(m consistency.Method) Config {
		cfg := baseConfig(t, m, consistency.InfraUnicast)
		cfg.Topology.UsersPerServer = 0
		cfg.LeaseDuration = 30 * time.Second
		return cfg
	}
	lease := mustRun(t, mk(consistency.MethodLease))
	push := mustRun(t, mk(consistency.MethodPush))
	if lease.UpdateMsgsToServers >= push.UpdateMsgsToServers/2 {
		t.Errorf("idle lease msgs (%d) not well below push (%d)",
			lease.UpdateMsgsToServers, push.UpdateMsgsToServers)
	}
}

func TestBroadcastRuns(t *testing.T) {
	cfg := baseConfig(t, consistency.MethodPush, consistency.InfraBroadcast)
	cfg.Clusters = 8
	res := mustRun(t, cfg)
	if len(res.ServerAvgInconsistency) != 80 {
		t.Fatalf("server stats = %d", len(res.ServerAvgInconsistency))
	}
	// Broadcast consistency is push-fast.
	if m := res.MeanServerInconsistency(); m > 5 {
		t.Errorf("broadcast staleness = %.2fs, want push-fast", m)
	}
}

// The paper's reason for dismissing broadcast: redundant messages. Flooding
// a cluster of size m costs ~m^2 messages per update vs m for push.
func TestBroadcastMessageBlowup(t *testing.T) {
	bcast := baseConfig(t, consistency.MethodPush, consistency.InfraBroadcast)
	bcast.Clusters = 8 // ~10 servers per cluster
	push := baseConfig(t, consistency.MethodPush, consistency.InfraUnicast)
	b := mustRun(t, bcast)
	p := mustRun(t, push)
	if b.UpdateMsgsToServers < 4*p.UpdateMsgsToServers {
		t.Errorf("broadcast msgs (%d) not >> push msgs (%d)",
			b.UpdateMsgsToServers, p.UpdateMsgsToServers)
	}
	// Every live server still converges to the final snapshot.
	if b.LiveServersAtFinalVersion != b.LiveServers {
		t.Errorf("broadcast left %d of %d servers behind",
			b.LiveServers-b.LiveServersAtFinalVersion, b.LiveServers)
	}
}

func TestBroadcastSurvivesFailures(t *testing.T) {
	cfg := baseConfig(t, consistency.MethodPush, consistency.InfraBroadcast)
	cfg.Clusters = 8
	cfg.FailServers = 10
	res := mustRun(t, cfg)
	if res.LiveServers != 70 {
		t.Fatalf("live servers = %d", res.LiveServers)
	}
	// Flooding is failure-tolerant as long as the seed survives; most
	// live servers should still converge.
	frac := float64(res.LiveServersAtFinalVersion) / float64(res.LiveServers)
	if frac < 0.7 {
		t.Errorf("converged fraction = %.2f after failures, want most", frac)
	}
}

func TestLeaseDeterministic(t *testing.T) {
	cfg := baseConfig(t, consistency.MethodLease, consistency.InfraUnicast)
	a := mustRun(t, cfg)
	b := mustRun(t, cfg)
	if a.UpdateMsgsToServers != b.UpdateMsgsToServers || a.Events != b.Events {
		t.Error("lease runs diverged")
	}
}
