package cdn

import (
	"fmt"
	"time"

	"cdnconsistency/internal/audit"
	"cdnconsistency/internal/consistency"
	"cdnconsistency/internal/geo"
	"cdnconsistency/internal/sim"
)

// cohort is one weighted group of interchangeable end-users: same home
// server, same visit phase, same period. One visit event per period stands
// in for count individual visits.
//
// The accounting is split into two strata. Under the self-adaptive method
// the first visitor after an invalidation is special: its observation is
// deferred until the server's poll returns fresh content, while every other
// same-instant visitor observes the (stale) cached version immediately. That
// is the only protocol path on which members of a cohort can diverge — and
// it always singles out the cohort's first member — so `leader` carries
// member 0 and `follow` carries members 1..count-1, who remain identical to
// each other forever. Every other method treats all members alike, leaving
// the two strata equal. This decomposition is what makes the cohort model's
// per-user accounting exactly equal to the explicit model's, not an
// approximation (the equivalence test suite holds it to that).
type cohort struct {
	idx    int
	home   int // node index of the serving server (re-homed on failover)
	count  int
	period time.Duration
	// loc is the cohort's location (its original home server's), used to
	// re-home after a failed visit exactly as explicit users do.
	loc    geo.Point
	leader userAgg
	follow userAgg
}

// cohortUsers is the aggregate user model: state and event volume scale with
// the number of cohorts, not users, which is what holds memory fixed while
// the population sweeps 10^4 -> 10^6.
type cohortUsers struct {
	s       *simulation
	cohorts []*cohort
	// initialUsers anchors the auditor's population-conservation invariant:
	// failover re-homes cohorts but never creates or destroys users.
	initialUsers int
}

// schedule builds the cohorts from the configured population and arms one
// visit event per cohort. No randomness is drawn: offsets and periods come
// from the population spec, so the engine RNG stream is identical to an
// explicit-model run over the same population.
func (m *cohortUsers) schedule() error {
	s := m.s
	for si, cohorts := range s.cfg.Population.Servers {
		for _, spec := range cohorts {
			period := spec.Period()
			if period <= 0 {
				period = s.cfg.UserTTL
			}
			c := &cohort{
				idx:    len(m.cohorts),
				home:   si + 1,
				count:  spec.Count,
				period: period,
				loc:    s.locs[si+1],
			}
			m.cohorts = append(m.cohorts, c)
			m.initialUsers += spec.Count
			// The cohort lives in its home server's cell; failover re-homes
			// within the cell, so the loop never migrates.
			s.cell(c.home).eng.ScheduleAfterFunc(spec.Offset(), cohortVisitEvent, m, int64(c.idx))
		}
	}
	return nil
}

// cohortVisitEvent is the closure-free cohort visit-loop handler; arg is the
// cohort's index. The visit body is kept separate from the reschedule so the
// steady-state poll handling is testably allocation-free.
func cohortVisitEvent(_ *sim.Engine, recv any, arg int64) {
	m := recv.(*cohortUsers)
	c := m.cohorts[arg]
	m.visit(c)
	m.s.cell(c.home).eng.ScheduleAfterFunc(c.period, cohortVisitEvent, m, arg)
}

// visit performs one batched visit: count users hitting the cohort's server
// at the same instant. Batching is sound because the explicit model fires
// same-time member visits consecutively with nothing interleaved (equal
// timestamps run in schedule order, and every protocol continuation lands at
// a strictly later time), and each branch's side effects are idempotent or
// weighted: fetches and lease renewals dedup via their in-flight flags,
// OnVisit switches on the first caller only, zero-gap ObserveVisit repeats
// are no-ops, and failover's nearest-live choice is the same for co-located
// members.
func (m *cohortUsers) visit(c *cohort) {
	s := m.s
	nd := s.nodes[c.home]
	w := c.count
	s.accountVisits(nd, w)

	switch {
	case nd.down:
		// All members hit the dead server and fail; with Failover the
		// whole cohort re-homes at once (members share a location, so
		// the explicit model moves each of them identically).
		s.cell(c.home).failedVisits += w
		c.leader.lastFailed = true
		c.follow.lastFailed = true
		if s.cfg.Failover {
			m.failover(c)
		}
	case s.fedStaleDenied(c.home):
		// Serve-stale denial past the federation staleness cap fails every
		// member identically (the denial depends only on the server).
		s.cell(c.home).failedVisits += w
		c.leader.lastFailed = true
		c.follow.lastFailed = true
		if s.cfg.Failover {
			m.failover(c)
		}
	case nd.auto != nil && nd.auto.OnVisit():
		// Self-adaptive, first visit after an invalidation: the leader's
		// observation defers until the server's poll lands; the followers
		// observe the cached version now (OnVisit flips the mode on the
		// first call, so an explicit run gives members 1.. the default
		// branch at the same instant).
		target := c.home
		s.selfAdaptiveVisitPoll(target, func() {
			s.observeAgg(target, &c.leader, 1, s.nodes[target].version)
		})
		if w > 1 {
			s.observeAgg(target, &c.follow, w-1, nd.version)
		}
	case s.cfg.Method == consistency.MethodInvalidation && !nd.valid:
		// Every member's visit joins the same in-flight fetch; all
		// observations defer to the fetch completion.
		target := c.home
		s.triggerFetch(target, func() {
			m.observeAll(c, s.nodes[target].version)
		})
	case s.cfg.Method == consistency.MethodRegime:
		if nd.rc != nil {
			// One regime observation: the explicit model's members 1..
			// call ObserveVisit at the same timestamp, a zero-gap no-op.
			nd.rc.ObserveVisit(s.now(c.home))
		}
		if !nd.valid {
			target := c.home
			s.triggerFetch(target, func() {
				m.observeAll(c, s.nodes[target].version)
			})
		} else {
			m.observeAll(c, nd.version)
		}
	case s.cfg.Method == consistency.MethodLease && !s.leaseValid(c.home):
		// One renewal in flight (leaseRenewing dedups the rest); all
		// observations defer to the grant or timeout.
		target := c.home
		s.renewLease(target, func() {
			m.observeAll(c, s.nodes[target].version)
		})
	default:
		m.observeAll(c, nd.version)
	}
}

// observeAll records one observation of version v for every member: the
// leader first, then the followers, mirroring the explicit model's member
// order.
func (m *cohortUsers) observeAll(c *cohort, v int) {
	m.s.observeAgg(c.home, &c.leader, 1, v)
	if c.count > 1 {
		m.s.observeAgg(c.home, &c.follow, c.count-1, v)
	}
}

// failover re-homes the whole cohort to the nearest live server, the batched
// form of the explicit model's per-user re-homing (members share a location,
// so every member picks the same server).
func (m *cohortUsers) failover(c *cohort) {
	if best := m.s.nearestLive(c.home, c.loc); best > 0 {
		m.s.cell(c.home).userFailovers += c.count
		c.home = best
	}
}

// collect emits one per-user entry per stratum with its member count in
// UserWeights, so percentile summaries and weighted means see the true
// population without materializing count slice entries.
func (m *cohortUsers) collect(res *Result) {
	for _, c := range m.cohorts {
		res.UserAvgInconsistency = append(res.UserAvgInconsistency, c.leader.avg())
		res.UserWeights = append(res.UserWeights, 1)
		res.UserObservations += c.leader.observations
		res.UserInconsistentObservations += c.leader.inconsistent
		if c.leader.lastFailed {
			res.StrandedUsers++
		}
		if c.count > 1 {
			res.UserAvgInconsistency = append(res.UserAvgInconsistency, c.follow.avg())
			res.UserWeights = append(res.UserWeights, c.count-1)
			res.UserObservations += (c.count - 1) * c.follow.observations
			res.UserInconsistentObservations += (c.count - 1) * c.follow.inconsistent
			if c.follow.lastFailed {
				res.StrandedUsers += c.count - 1
			}
		}
	}
}

func (m *cohortUsers) totalUsers() int { return m.initialUsers }

// audit verifies the cohort bookkeeping: population conservation (churn and
// re-homing move cohorts between servers but never change Σ counts), home
// bounds, and per-stratum accounting sanity.
func (m *cohortUsers) audit() *audit.Violation {
	total := 0
	for _, c := range m.cohorts {
		if c.count <= 0 {
			return violationAt("cohort-conservation", -1,
				"cohort %d holds non-positive count %d", c.idx, c.count)
		}
		if c.home <= 0 || c.home >= len(m.s.nodes) {
			return violationAt("cohort-conservation", -1,
				"cohort %d homed at invalid node %d", c.idx, c.home)
		}
		total += c.count
		if v := audit.CheckCount(fmt.Sprintf("cohort %d leader inconsistent observations", c.idx),
			c.leader.inconsistent, c.leader.observations); v != nil {
			return v
		}
		if v := audit.CheckCount(fmt.Sprintf("cohort %d follower inconsistent observations", c.idx),
			c.follow.inconsistent, c.follow.observations); v != nil {
			return v
		}
		if v := audit.CheckSeries(fmt.Sprintf("cohort %d catchupSum", c.idx),
			[]float64{c.leader.catchupSum, c.follow.catchupSum}); v != nil {
			v.Server = -1
			return v
		}
	}
	if total != m.initialUsers {
		return violationAt("cohort-conservation", -1,
			"cohort population drifted: Σ counts = %d, initial = %d", total, m.initialUsers)
	}
	return nil
}
