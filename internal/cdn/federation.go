package cdn

import (
	"strconv"
	"time"

	"cdnconsistency/internal/consistency"
	"cdnconsistency/internal/federation"
	"cdnconsistency/internal/geo"
	"cdnconsistency/internal/netmodel"
)

// This file holds the multi-CDN federation runtime: N provider origins with
// distinct TTLs and propagation behavior behind the single ground-truth
// publisher (node 0), anycast-style nearest-provider homing, inter-CDN
// peering hand-off for servers whose home provider is down, a meta-CDN broker
// that durably re-homes servers with hysteresis and a minimum dwell time, and
// graceful serve-stale degradation when every provider is unreachable.
//
// Federation is serial-only (withDefaults rejects Shards > 0): provider
// selection, degradation intervals, and the broker all observe global state.
// When Config.Federation is nil, none of the code in this file runs and every
// classic code path executes unchanged — a fed==nil run is event-for-event
// identical to a build without this file.

// fedProvider is one federated CDN origin. Provider 0 reuses node 0's
// endpoint identity ("provider"), so the classic origin-traffic accounting
// (Accounting.BySender["provider"]) keeps meaning the primary origin; peers
// appear as "provider1", "provider2", ... in the per-sender ledger.
type fedProvider struct {
	ep  netmodel.Endpoint
	loc geo.Point
	// down marks an unreachable provider (fault-driven); version is the
	// newest snapshot this provider serves, which trails the ground truth by
	// its propagation delay.
	down    bool
	version int
	// pendingDissem defers this provider's dissemination while it is down;
	// released by its own provider-up event.
	pendingDissem bool
	// ttl overrides Config.ServerTTL for servers homed here (0 = inherit);
	// propagation is the publication-to-servable delay at this provider.
	ttl         time.Duration
	propagation time.Duration
}

// fedState is the federation runtime state. The cell counters
// (providerSwitches, peerHandoffs, degraded*) are the reported metrics; the
// ledger* copies and per-node arrays here are the auditor's independent
// second ledger — corrupt either side and checkFederation catches the split.
type fedState struct {
	prov []*fedProvider
	// home[i] is node i's current home provider (anycast nearest at setup,
	// durably re-homed by retry exhaustion and the broker). Index 0 unused.
	home []int
	// lastSwitch[i] is when node i last changed home (broker dwell gate).
	lastSwitch []time.Duration
	// degradedSince[i] is when node i entered all-providers-down degradation
	// (-1 when not degraded); degradedTotal[i] accumulates its closed
	// degradation intervals in seconds.
	degradedSince []time.Duration
	degradedTotal []float64

	ledgerSwitches int
	ledgerHandoffs int

	staleCap         time.Duration
	brokerPeriod     time.Duration
	brokerHysteresis float64
	brokerMinDwell   time.Duration
}

// newFedState builds the runtime from a validated spec. It draws no
// randomness: anycast homing is a pure function of server and provider
// locations, so federated runs share topology and user schedules with their
// classic counterparts.
func newFedState(s *simulation, spec *federation.Spec) *fedState {
	f := &fedState{
		staleCap: spec.StaleCap.D(),
	}
	if spec.Broker != nil {
		f.brokerPeriod = spec.Broker.Period.D()
		f.brokerHysteresis = spec.Broker.Hysteresis
		f.brokerMinDwell = spec.Broker.MinDwell.D()
	}
	for k, p := range spec.Providers {
		id := "provider"
		if k > 0 {
			id = "provider" + strconv.Itoa(k)
		}
		loc := geo.Point{Lat: p.Lat, Lon: p.Lon}
		f.prov = append(f.prov, &fedProvider{
			ep:          netmodel.Endpoint{ID: id, Loc: loc, ISP: s.nodes[0].ep.ISP},
			loc:         loc,
			ttl:         p.TTL.D(),
			propagation: p.Propagation.D(),
		})
	}
	n := len(s.nodes)
	f.home = make([]int, n)
	f.lastSwitch = make([]time.Duration, n)
	f.degradedSince = make([]time.Duration, n)
	f.degradedTotal = make([]float64, n)
	for i := 1; i < n; i++ {
		f.home[i] = f.nearestProvider(s.locs[i], nil)
		f.degradedSince[i] = -1
	}
	f.degradedSince[0] = -1
	return f
}

// nearestProvider returns the provider nearest to loc, optionally restricted
// by the alive filter; -1 when the filter rejects everything. Ties break to
// the lower index, keeping the assignment deterministic.
func (f *fedState) nearestProvider(loc geo.Point, alive func(k int) bool) int {
	best, bestD := -1, 0.0
	for k, p := range f.prov {
		if alive != nil && !alive(k) {
			continue
		}
		d := geo.DistanceKm(loc, p.loc)
		if best == -1 || d < bestD {
			best, bestD = k, d
		}
	}
	return best
}

// nearestAlive is the anycast failover choice for node i: the nearest
// provider that is up, or -1 during an all-providers-down blackout.
func (f *fedState) nearestAlive(s *simulation, i int) int {
	return f.nearestProvider(s.locs[i], func(k int) bool { return !f.prov[k].down })
}

// allDown reports an all-providers-down blackout.
func (f *fedState) allDown() bool {
	for _, p := range f.prov {
		if !p.down {
			return false
		}
	}
	return true
}

// fedTTL is node i's poll period: its home provider's TTL override, or the
// configured ServerTTL. With federation off it is exactly Config.ServerTTL.
func (s *simulation) fedTTL(i int) time.Duration {
	if s.fed != nil {
		if t := s.fed.prov[s.fed.home[i]].ttl; t > 0 {
			return t
		}
	}
	return s.cfg.ServerTTL
}

// fedRoute picks the provider answering node i's origin contact: the home
// provider when it is up; otherwise the nearest alive peer (an inter-CDN
// peering hand-off — transient, the home assignment is unchanged); otherwise
// the dead home itself, entering serve-stale degradation — the request still
// goes out and goes unanswered, exactly like a classic dark-provider poll.
func (s *simulation) fedRoute(i int) int {
	f := s.fed
	h := f.home[i]
	if !f.prov[h].down {
		return h
	}
	if k := f.nearestAlive(s, i); k >= 0 {
		s.cells[0].peerHandoffs++
		f.ledgerHandoffs++
		return k
	}
	s.fedEnterDegraded(i)
	return h
}

// fedRehome durably moves node i's home to provider k (retry exhaustion or a
// broker decision) and books the switch in both ledgers.
func (s *simulation) fedRehome(i, k int) {
	f := s.fed
	f.home[i] = k
	f.lastSwitch[i] = s.now(i)
	s.cells[0].providerSwitches++
	f.ledgerSwitches++
}

// fedEnterDegraded opens node i's degradation interval: it attempted an
// origin contact while every provider was down, and from here on serves its
// stale cached content (bounded by StaleCap).
func (s *simulation) fedEnterDegraded(i int) {
	f := s.fed
	if f.degradedSince[i] >= 0 {
		return
	}
	f.degradedSince[i] = s.now(i)
	s.cells[0].degradedEnters++
}

// fedExitDegraded closes node i's degradation interval on its first
// successful origin contact (or at the horizon, via fedCloseDegradation).
func (s *simulation) fedExitDegraded(i int) {
	f := s.fed
	since := f.degradedSince[i]
	if since < 0 {
		return
	}
	f.degradedSince[i] = -1
	secs := (s.now(i) - since).Seconds()
	f.degradedTotal[i] += secs
	c := s.cells[0]
	c.degradedExits++
	c.degradedSeconds += secs
}

// fedCloseDegradation closes every still-open degradation interval when the
// run drains, so degraded_seconds counts blackout time up to the horizon even
// for nodes that never saw a provider return.
func (s *simulation) fedCloseDegradation() {
	for i := range s.fed.degradedSince {
		if s.fed.degradedSince[i] >= 0 {
			s.fedExitDegraded(i)
		}
	}
}

// fedStaleDenied reports whether node i has been serving stale content under
// degradation for longer than the configured staleness cap, in which case
// visits fail rather than serve arbitrarily old content. StaleCap 0 means
// unlimited serve-stale (the default: no visit ever fails for staleness).
func (s *simulation) fedStaleDenied(i int) bool {
	f := s.fed
	if f == nil || f.staleCap <= 0 {
		return false
	}
	since := f.degradedSince[i]
	return since >= 0 && s.now(i)-since > f.staleCap
}

// fedDeliverUp sends a request from node i to provider k's endpoint, with
// the same bookkeeping as deliver (attempt/send/drop conservation); the
// arrival runs in cell 0 (federation is serial-only).
func (s *simulation) fedDeliverUp(i, k int, sizeKB float64, class netmodel.Class, onArrival func()) {
	c := s.cells[0]
	c.deliverAttempts++
	if !c.net.Reachable(s.nodes[i].ep, s.fed.prov[k].ep) {
		s.dropDelivery(i, "partition")
		return
	}
	c.deliverSends++
	arrival := c.net.Send(s.nodes[i].ep, s.fed.prov[k].ep, sizeKB, class, c.eng.Now())
	if class == netmodel.ClassLight {
		c.lightMsgs++
	}
	s.at(0, arrival, onArrival)
}

// fedDeliver sends a response or notification from provider k to node `to`,
// booking it under the provider's endpoint so per-provider load shows up in
// the per-sender traffic ledger.
func (s *simulation) fedDeliver(k, to int, sizeKB float64, class netmodel.Class, onArrival func()) {
	c := s.cells[0]
	c.deliverAttempts++
	if !c.net.Reachable(s.fed.prov[k].ep, s.nodes[to].ep) {
		s.dropDelivery(0, "partition")
		return
	}
	c.deliverSends++
	arrival := c.net.Send(s.fed.prov[k].ep, s.nodes[to].ep, sizeKB, class, c.eng.Now())
	switch class {
	case netmodel.ClassUpdate:
		c.updateMsgsToServers++
		c.updateMsgsFromProvider++
	case netmodel.ClassLight:
		c.lightMsgs++
	}
	s.at(to, arrival, onArrival)
}

// fedOriginExchange runs one request/response exchange between node i and
// the federation: route the request (peering hand-off if the home is down),
// and if the routed provider is still up at arrival, answer with its version
// from its endpoint. A provider that went dark in flight never answers — the
// requester's own timeout takes over, exactly like the classic outage path.
func (s *simulation) fedOriginExchange(i int, respKB float64, respClass netmodel.Class, onAnswer func(v, k int)) {
	k := s.fedRoute(i)
	s.fedDeliverUp(i, k, s.cfg.LightSizeKB, netmodel.ClassLight, func() {
		p := s.fed.prov[k]
		if p.down {
			return
		}
		v := p.version
		s.fedDeliver(k, i, respKB, respClass, func() { onAnswer(v, k) })
	})
}

// fedAdvance moves provider k's servable version to v (scheduled at the
// publication time plus k's propagation delay). A down provider still takes
// the content — its backend replicated it — but defers dissemination until
// its own recovery.
func (s *simulation) fedAdvance(k, v int) {
	p := s.fed.prov[k]
	if v > p.version {
		p.version = v
	}
	if p.down {
		p.pendingDissem = true
		return
	}
	s.fedDisseminate(k)
}

// fedProviderDown marks provider k unreachable.
func (s *simulation) fedProviderDown(k int) {
	s.fed.prov[k].down = true
}

// fedProviderUp recovers provider k, releasing any dissemination deferred
// while it was dark.
func (s *simulation) fedProviderUp(k int) {
	p := s.fed.prov[k]
	if !p.down {
		return
	}
	p.down = false
	if p.pendingDissem {
		p.pendingDissem = false
		s.fedDisseminate(k)
	}
}

// fedDisseminate runs the configured method's reaction to provider k's
// current content, for the root-level servers homed at k — the federated
// split of the classic disseminate().
func (s *simulation) fedDisseminate(k int) {
	switch {
	case s.cfg.Method == consistency.MethodPush:
		s.fedPushRoots(k)
	case s.cfg.Infra == consistency.InfraHybrid:
		s.fedPushRoots(k)
		switch s.cfg.Method {
		case consistency.MethodInvalidation:
			s.fedInvalidateRoots(k)
		case consistency.MethodSelfAdaptive:
			s.fedNotifySubscribers(k)
		}
	case s.cfg.Method == consistency.MethodInvalidation:
		s.fedInvalidateRoots(k)
	case s.cfg.Method == consistency.MethodSelfAdaptive:
		s.fedNotifySubscribers(k)
	}
}

// fedPushRoots pushes provider k's version to the root-level servers homed
// at k; below the root the classic relay paths take over unchanged.
func (s *simulation) fedPushRoots(k int) {
	v := s.fed.prov[k].version
	for _, c := range s.tree.Children(0) {
		child := c
		if s.fed.home[child] != k {
			continue
		}
		if s.cfg.Infra == consistency.InfraHybrid && !s.nodes[child].isSupernode {
			continue
		}
		s.fedDeliver(k, child, s.cfg.UpdateSizeKB, netmodel.ClassUpdate, func() {
			nd := s.nodes[child]
			if nd.down || v <= nd.version {
				return
			}
			s.setVersion(nd, v)
			if s.cfg.Method == consistency.MethodPush {
				s.pushToChildren(child)
				return
			}
			// Hybrid supernode relay: push on to supernode children, then run
			// the cluster-internal method's reaction.
			s.pushToSupernodeChildren(child)
			s.afterSourceUpdate(nd)
		})
	}
}

// fedInvalidateRoots sends invalidation notices from provider k to its
// root-level servers; the notices relay down the tree classically.
func (s *simulation) fedInvalidateRoots(k int) {
	for _, c := range s.tree.Children(0) {
		child := c
		if s.fed.home[child] != k {
			continue
		}
		if s.cfg.Infra == consistency.InfraHybrid && s.nodes[child].isSupernode {
			continue
		}
		s.fedDeliver(k, child, s.cfg.LightSizeKB, netmodel.ClassLight, func() {
			nd := s.nodes[child]
			if nd.down {
				return
			}
			nd.valid = false
			s.invalidateChildren(child)
		})
	}
}

// fedNotifySubscribers sends one aggregated invalidation notice from
// provider k to each not-yet-notified self-adaptive subscriber homed at k.
// The subscriber registry stays on node 0 (the logical origin); only the
// answering endpoint federates.
func (s *simulation) fedNotifySubscribers(k int) {
	src := s.nodes[0]
	for _, sub := range sortedKeys(src.subscribers) {
		if src.subscribers[sub] || s.fed.home[sub] != k {
			continue
		}
		src.subscribers[sub] = true
		child := sub
		s.fedDeliver(k, child, s.cfg.LightSizeKB, netmodel.ClassLight, func() {
			nd := s.nodes[child]
			if nd.down {
				return
			}
			nd.valid = false
			if nd.auto != nil {
				nd.auto.OnInvalidation()
			}
		})
	}
}

// fedBrokerTick is one meta-CDN broker pass: every server whose home
// provider is down moves to the nearest alive one, and a server parked on a
// distant backup moves back only when a provider at least (1+hysteresis)
// times closer is alive — with a minimum dwell between any two switches.
// Hysteresis plus dwell is what keeps a flapping provider from dragging its
// servers back and forth every cycle. The pass draws no randomness and
// iterates servers in index order, so broker decisions are deterministic.
func (s *simulation) fedBrokerTick() {
	f := s.fed
	now := s.now(0)
	for i := 1; i < len(s.nodes); i++ {
		cur := f.home[i]
		best := f.nearestAlive(s, i)
		if best < 0 || best == cur {
			continue
		}
		if now-f.lastSwitch[i] < f.brokerMinDwell {
			continue
		}
		if f.prov[cur].down {
			s.fedRehome(i, best)
			continue
		}
		dBest := geo.DistanceKm(s.locs[i], f.prov[best].loc)
		dCur := geo.DistanceKm(s.locs[i], f.prov[cur].loc)
		if dBest*(1+f.brokerHysteresis) < dCur {
			s.fedRehome(i, best)
		}
	}
}
