package cdn

import (
	"testing"
	"time"

	"cdnconsistency/internal/consistency"
)

func TestFailureConfigValidation(t *testing.T) {
	cfg := baseConfig(t, consistency.MethodTTL, consistency.InfraUnicast)
	cfg.FailServers = -1
	if _, err := Run(cfg); err == nil {
		t.Error("negative FailServers accepted")
	}
	cfg = baseConfig(t, consistency.MethodTTL, consistency.InfraUnicast)
	cfg.UseDNSRouting = true
	cfg.UserSwitchEveryVisit = true
	if _, err := Run(cfg); err == nil {
		t.Error("DNS routing + switching accepted")
	}
}

func TestFailuresCrashStopServers(t *testing.T) {
	cfg := baseConfig(t, consistency.MethodTTL, consistency.InfraUnicast)
	cfg.FailServers = 10
	res := mustRun(t, cfg)
	if res.FailedServers != 10 {
		t.Errorf("FailedServers = %d, want 10", res.FailedServers)
	}
	if res.LiveServers != 70 {
		t.Errorf("LiveServers = %d, want 70", res.LiveServers)
	}
}

func TestFailuresCappedAtServerCount(t *testing.T) {
	cfg := baseConfig(t, consistency.MethodPush, consistency.InfraUnicast)
	cfg.FailServers = 1000
	res := mustRun(t, cfg)
	if res.FailedServers != 80 {
		t.Errorf("FailedServers = %d, want 80", res.FailedServers)
	}
	if res.LiveServers != 0 {
		t.Errorf("LiveServers = %d, want 0", res.LiveServers)
	}
}

// The paper's multicast criticism: failures break tree connectivity and
// updates stop propagating into the orphaned subtree — unless the tree is
// repaired.
func TestMulticastFailureBreaksPropagationRepairRestoresIt(t *testing.T) {
	run := func(repair bool) *Result {
		cfg := baseConfig(t, consistency.MethodPush, consistency.InfraMulticast)
		cfg.TreeDegree = 2 // deep tree: failures strand large subtrees
		cfg.FailServers = 12
		cfg.RepairTree = repair
		return mustRun(t, cfg)
	}
	broken := run(false)
	repaired := run(true)

	brokenFrac := float64(broken.LiveServersAtFinalVersion) / float64(broken.LiveServers)
	repairedFrac := float64(repaired.LiveServersAtFinalVersion) / float64(repaired.LiveServers)
	if repairedFrac <= brokenFrac {
		t.Errorf("repair did not help: %.2f (repaired) vs %.2f (broken)", repairedFrac, brokenFrac)
	}
	if repairedFrac < 0.95 {
		t.Errorf("repaired tree final-version fraction = %.2f, want ~1", repairedFrac)
	}
	if brokenFrac > 0.9 {
		t.Errorf("unrepaired tree final-version fraction = %.2f, want visibly degraded", brokenFrac)
	}
}

// Unicast is immune to relay failures: every live server still gets pushes.
func TestUnicastUnaffectedByOtherServersFailures(t *testing.T) {
	cfg := baseConfig(t, consistency.MethodPush, consistency.InfraUnicast)
	cfg.FailServers = 20
	res := mustRun(t, cfg)
	if res.LiveServersAtFinalVersion != res.LiveServers {
		t.Errorf("live servers at final version = %d of %d, want all",
			res.LiveServersAtFinalVersion, res.LiveServers)
	}
}

// TTL pollers ride out dead relay parents via timeouts: the run completes
// and live servers keep making progress wherever their parent chain is live.
func TestTTLWithFailuresCompletes(t *testing.T) {
	for _, infra := range []consistency.Infra{consistency.InfraUnicast, consistency.InfraMulticast, consistency.InfraHybrid} {
		cfg := baseConfig(t, consistency.MethodTTL, infra)
		cfg.FailServers = 8
		res := mustRun(t, cfg)
		if res.LiveServers == 0 {
			t.Fatalf("%v: no live servers", infra)
		}
	}
}

func TestSelfAdaptiveWithFailuresCompletes(t *testing.T) {
	cfg := baseConfig(t, consistency.MethodSelfAdaptive, consistency.InfraHybrid)
	cfg.FailServers = 8
	res := mustRun(t, cfg)
	if res.LiveServers != 72 {
		t.Errorf("LiveServers = %d, want 72", res.LiveServers)
	}
}

func TestInvalidationFetchFailureServesStale(t *testing.T) {
	cfg := baseConfig(t, consistency.MethodInvalidation, consistency.InfraMulticast)
	cfg.FailServers = 10
	res := mustRun(t, cfg)
	// The run must complete with users still observing content.
	if res.UserObservations == 0 {
		t.Fatal("no user observations")
	}
}

func TestDNSRoutingRedirects(t *testing.T) {
	cfg := baseConfig(t, consistency.MethodTTL, consistency.InfraUnicast)
	cfg.UseDNSRouting = true
	cfg.ResolverTTL = 30 * time.Second
	res := mustRun(t, cfg)
	if res.DNSVisits == 0 {
		t.Fatal("no DNS-routed visits")
	}
	rate := float64(res.DNSRedirects) / float64(res.DNSVisits)
	// With a 30s resolver TTL and 10s visits at most 1/3 of visits can
	// re-resolve; some re-resolutions return the same server.
	if rate <= 0 || rate > 0.34 {
		t.Errorf("redirect rate = %.3f, want in (0, 0.34]", rate)
	}
}

// DNS-routed users see self-inconsistency under TTL (redirected onto stale
// replicas) but not under Push.
func TestDNSRoutingInconsistencyOrdering(t *testing.T) {
	run := func(m consistency.Method) float64 {
		cfg := baseConfig(t, m, consistency.InfraUnicast)
		cfg.UseDNSRouting = true
		cfg.ResolverTTL = 20 * time.Second
		return mustRun(t, cfg).InconsistentObservationFrac()
	}
	push := run(consistency.MethodPush)
	ttl := run(consistency.MethodTTL)
	if push > 0.01 {
		t.Errorf("Push DNS inconsistency = %.4f, want ~0", push)
	}
	if ttl <= push {
		t.Errorf("TTL (%.4f) not above Push (%.4f) under DNS routing", ttl, push)
	}
}

// DNS-routed users converge on nearby servers, so their visits stay inside
// a geographic neighbourhood.
func TestDNSRoutingDeterministic(t *testing.T) {
	cfg := baseConfig(t, consistency.MethodTTL, consistency.InfraUnicast)
	cfg.UseDNSRouting = true
	a := mustRun(t, cfg)
	b := mustRun(t, cfg)
	if a.DNSRedirects != b.DNSRedirects || a.DNSVisits != b.DNSVisits {
		t.Errorf("DNS runs diverged: %d/%d vs %d/%d",
			a.DNSRedirects, a.DNSVisits, b.DNSRedirects, b.DNSVisits)
	}
}
