package cdn

import (
	"testing"
	"time"

	"cdnconsistency/internal/consistency"
	"cdnconsistency/internal/netmodel"
	"cdnconsistency/internal/topology"
	"cdnconsistency/internal/workload"
)

// testGame is a short live event alternating play and silence so the
// self-adaptive method has something to adapt to (the paper's update
// pattern: bursts during the match, silence during breaks).
func testGame() workload.GameConfig {
	var phases []Phase
	for i := 0; i < 4; i++ {
		phases = append(phases,
			Phase{Name: "play", Duration: 5 * time.Minute, MeanGap: 15 * time.Second},
			Phase{Name: "break", Duration: 4 * time.Minute, MeanGap: 0},
		)
	}
	return workload.GameConfig{Phases: phases, SizeKB: 1, MinGap: time.Second}
}

// Phase aliases workload.Phase for brevity in the fixture above.
type Phase = workload.Phase

func baseConfig(t *testing.T, method consistency.Method, infra consistency.Infra) Config {
	t.Helper()
	updates, err := workload.Schedule(testGame(), 99)
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Method:   method,
		Infra:    infra,
		Topology: topology.Config{Servers: 80, UsersPerServer: 2, Seed: 7},
		Clusters: 8, // ~10 servers per cluster, as in the paper's scale
		Updates:  updates,
		Seed:     7,
	}
}

func mustRun(t *testing.T, cfg Config) *Result {
	t.Helper()
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run(%v,%v): %v", cfg.Method, cfg.Infra, err)
	}
	return res
}

func TestRunAllMethodInfraCombinations(t *testing.T) {
	methods := []consistency.Method{
		consistency.MethodTTL, consistency.MethodPush,
		consistency.MethodInvalidation, consistency.MethodSelfAdaptive,
		consistency.MethodAdaptiveTTL,
	}
	infras := []consistency.Infra{
		consistency.InfraUnicast, consistency.InfraMulticast, consistency.InfraHybrid,
	}
	for _, m := range methods {
		for _, inf := range infras {
			m, inf := m, inf
			t.Run(m.String()+"/"+inf.String(), func(t *testing.T) {
				res := mustRun(t, baseConfig(t, m, inf))
				if len(res.ServerAvgInconsistency) != 80 {
					t.Fatalf("server stats = %d, want 80", len(res.ServerAvgInconsistency))
				}
				if len(res.UserAvgInconsistency) != 160 {
					t.Fatalf("user stats = %d, want 160", len(res.UserAvgInconsistency))
				}
				for i, v := range res.ServerAvgInconsistency {
					if v < 0 {
						t.Fatalf("server %d negative inconsistency %v", i, v)
					}
				}
				if res.Accounting.Total().Messages == 0 {
					t.Fatal("no traffic recorded")
				}
				if inf == consistency.InfraHybrid && res.Supernodes == 0 {
					t.Fatal("hybrid run elected no supernodes")
				}
				if res.Events == 0 {
					t.Fatal("no events processed")
				}
			})
		}
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := Run(Config{Method: consistency.Method(0), Infra: consistency.InfraUnicast}); err == nil {
		t.Error("invalid method accepted")
	}
	if _, err := Run(Config{Method: consistency.MethodTTL, Infra: consistency.Infra(0)}); err == nil {
		t.Error("invalid infra accepted")
	}
	cfg := Config{Method: consistency.MethodTTL, Infra: consistency.InfraUnicast,
		Topology: topology.Config{Servers: 0}}
	if _, err := Run(cfg); err == nil {
		t.Error("bad topology accepted")
	}
	cfg = Config{Method: consistency.MethodTTL, Infra: consistency.InfraUnicast,
		Topology: topology.Config{Servers: 3},
		Updates: []workload.Update{
			{Snapshot: 1, At: 10 * time.Second},
			{Snapshot: 2, At: 5 * time.Second},
		}}
	if _, err := Run(cfg); err == nil {
		t.Error("unordered updates accepted")
	}
	cfg.Updates = []workload.Update{{Snapshot: 9, At: time.Second}}
	if _, err := Run(cfg); err == nil {
		t.Error("out-of-range snapshot accepted")
	}
	cfg.Updates = nil
	cfg.StartDelay = -time.Second
	if _, err := Run(cfg); err == nil {
		t.Error("negative StartDelay accepted")
	}
}

func TestDeterminism(t *testing.T) {
	a := mustRun(t, baseConfig(t, consistency.MethodSelfAdaptive, consistency.InfraHybrid))
	b := mustRun(t, baseConfig(t, consistency.MethodSelfAdaptive, consistency.InfraHybrid))
	if a.Events != b.Events || a.UpdateMsgsToServers != b.UpdateMsgsToServers {
		t.Fatalf("runs differ: events %d vs %d, msgs %d vs %d",
			a.Events, b.Events, a.UpdateMsgsToServers, b.UpdateMsgsToServers)
	}
	for i := range a.ServerAvgInconsistency {
		if a.ServerAvgInconsistency[i] != b.ServerAvgInconsistency[i] {
			t.Fatalf("server %d inconsistency differs", i)
		}
	}
}

// Figure 14(a): in unicast, server inconsistency follows
// Push < Invalidation < TTL.
func TestFig14ServerOrdering(t *testing.T) {
	push := mustRun(t, baseConfig(t, consistency.MethodPush, consistency.InfraUnicast))
	inval := mustRun(t, baseConfig(t, consistency.MethodInvalidation, consistency.InfraUnicast))
	ttl := mustRun(t, baseConfig(t, consistency.MethodTTL, consistency.InfraUnicast))

	p, i, tt := push.MeanServerInconsistency(), inval.MeanServerInconsistency(), ttl.MeanServerInconsistency()
	if !(p < i && i < tt) {
		t.Errorf("ordering violated: Push=%.3fs Invalidation=%.3fs TTL=%.3fs", p, i, tt)
	}
	// TTL's mean is about TTL/2 (plus poll-response latency).
	if tt < 20 || tt > 45 {
		t.Errorf("TTL mean = %.1fs, want ~30s (TTL/2)", tt)
	}
	// Push is network-latency scale.
	if p > 1 {
		t.Errorf("Push mean = %.3fs, want sub-second", p)
	}
}

// Figure 14(b): users see Push ~ Invalidation < TTL.
func TestFig14UserOrdering(t *testing.T) {
	push := mustRun(t, baseConfig(t, consistency.MethodPush, consistency.InfraUnicast))
	inval := mustRun(t, baseConfig(t, consistency.MethodInvalidation, consistency.InfraUnicast))
	ttl := mustRun(t, baseConfig(t, consistency.MethodTTL, consistency.InfraUnicast))

	p, i, tt := push.MeanUserInconsistency(), inval.MeanUserInconsistency(), ttl.MeanUserInconsistency()
	if tt <= p || tt <= i {
		t.Errorf("TTL users (%.1fs) not worst: Push=%.1fs Invalidation=%.1fs", tt, p, i)
	}
	// Push and Invalidation differ by at most the visit period.
	if diff := i - p; diff < -10 || diff > 10 {
		t.Errorf("Invalidation-Push user gap = %.1fs, want within one visit period", diff)
	}
}

// Figure 15(a): the multicast tree amplifies TTL inconsistency with depth.
func TestFig15MulticastAmplifiesTTL(t *testing.T) {
	uni := mustRun(t, baseConfig(t, consistency.MethodTTL, consistency.InfraUnicast))
	multi := mustRun(t, baseConfig(t, consistency.MethodTTL, consistency.InfraMulticast))
	if multi.TreeDepth < 3 {
		t.Fatalf("multicast depth = %d, want >= 3", multi.TreeDepth)
	}
	if multi.MeanServerInconsistency() <= uni.MeanServerInconsistency() {
		t.Errorf("multicast TTL (%.1fs) not above unicast (%.1fs)",
			multi.MeanServerInconsistency(), uni.MeanServerInconsistency())
	}
}

// Figure 16: multicast saves traffic cost (km*KB) over unicast for Push.
func TestFig16MulticastSavesTraffic(t *testing.T) {
	uni := mustRun(t, baseConfig(t, consistency.MethodPush, consistency.InfraUnicast))
	multi := mustRun(t, baseConfig(t, consistency.MethodPush, consistency.InfraMulticast))
	uc := uni.Accounting.Total().KmKB
	mc := multi.Accounting.Total().KmKB
	if mc >= uc {
		t.Errorf("multicast cost %.0f not below unicast %.0f", mc, uc)
	}
}

// Figure 17: raising the server TTL lowers consistency-maintenance cost.
func TestFig17CostFallsWithTTL(t *testing.T) {
	short := baseConfig(t, consistency.MethodTTL, consistency.InfraUnicast)
	short.ServerTTL = 10 * time.Second
	long := baseConfig(t, consistency.MethodTTL, consistency.InfraUnicast)
	long.ServerTTL = 60 * time.Second
	shortRes := mustRun(t, short)
	longRes := mustRun(t, long)
	if longRes.Accounting.Total().KmKB >= shortRes.Accounting.Total().KmKB {
		t.Errorf("cost with TTL=60s (%.0f) not below TTL=10s (%.0f)",
			longRes.Accounting.Total().KmKB, shortRes.Accounting.Total().KmKB)
	}
}

// Figure 18: Invalidation inconsistency grows and cost falls as the
// end-user TTL grows.
func TestFig18UserTTLTradeoff(t *testing.T) {
	fast := baseConfig(t, consistency.MethodInvalidation, consistency.InfraUnicast)
	fast.UserTTL = 10 * time.Second
	slow := baseConfig(t, consistency.MethodInvalidation, consistency.InfraUnicast)
	slow.UserTTL = 120 * time.Second
	fastRes := mustRun(t, fast)
	slowRes := mustRun(t, slow)
	if slowRes.MeanServerInconsistency() <= fastRes.MeanServerInconsistency() {
		t.Errorf("inconsistency with 120s visits (%.1fs) not above 10s visits (%.1fs)",
			slowRes.MeanServerInconsistency(), fastRes.MeanServerInconsistency())
	}
	if slowRes.Accounting.Total().KmKB >= fastRes.Accounting.Total().KmKB {
		t.Errorf("cost with 120s visits (%.0f) not below 10s visits (%.0f)",
			slowRes.Accounting.Total().KmKB, fastRes.Accounting.Total().KmKB)
	}
}

// Figure 19(a): large update packets degrade Push (provider uplink
// serialization) much more than TTL in unicast.
func TestFig19PacketSizeDegradesPush(t *testing.T) {
	mk := func(m consistency.Method, size float64) float64 {
		cfg := baseConfig(t, m, consistency.InfraUnicast)
		cfg.UpdateSizeKB = size
		cfg.Net = netmodel.Config{DefaultUplinkKBps: 2000}
		return mustRun(t, cfg).MeanServerInconsistency()
	}
	pushSmall, pushBig := mk(consistency.MethodPush, 1), mk(consistency.MethodPush, 500)
	ttlSmall, ttlBig := mk(consistency.MethodTTL, 1), mk(consistency.MethodTTL, 500)
	pushGrowth := pushBig - pushSmall
	ttlGrowth := ttlBig - ttlSmall
	if pushGrowth <= ttlGrowth {
		t.Errorf("push growth %.2fs not above ttl growth %.2fs", pushGrowth, ttlGrowth)
	}
	if pushBig <= pushSmall {
		t.Errorf("push did not degrade with size: %.3fs -> %.3fs", pushSmall, pushBig)
	}
}

// Figure 20(b): in multicast, TTL inconsistency grows with network size
// (deeper tree).
func TestFig20MulticastTTLGrowsWithSize(t *testing.T) {
	mk := func(servers int) *Result {
		cfg := baseConfig(t, consistency.MethodTTL, consistency.InfraMulticast)
		cfg.Topology = topology.Config{Servers: servers, UsersPerServer: 1, Seed: 7}
		return mustRun(t, cfg)
	}
	small := mk(20)
	big := mk(160)
	if big.TreeDepth <= small.TreeDepth {
		t.Fatalf("tree depth did not grow: %d -> %d", small.TreeDepth, big.TreeDepth)
	}
	if big.MeanServerInconsistency() <= small.MeanServerInconsistency() {
		t.Errorf("multicast TTL inconsistency did not grow with size: %.1fs -> %.1fs",
			small.MeanServerInconsistency(), big.MeanServerInconsistency())
	}
}

// Figure 22(a): update-message counts follow
// Push > Invalidation > TTL ~ Hybrid > HAT > Self.
func TestFig22MessageOrdering(t *testing.T) {
	run := func(m consistency.Method, inf consistency.Infra) *Result {
		return mustRun(t, baseConfig(t, m, inf))
	}
	push := run(consistency.MethodPush, consistency.InfraUnicast)
	inval := run(consistency.MethodInvalidation, consistency.InfraUnicast)
	ttl := run(consistency.MethodTTL, consistency.InfraUnicast)
	self := run(consistency.MethodSelfAdaptive, consistency.InfraUnicast)
	hybrid := run(consistency.MethodTTL, consistency.InfraHybrid)
	hat := run(consistency.MethodSelfAdaptive, consistency.InfraHybrid)

	p, i, tt := push.UpdateMsgsToServers, inval.UpdateMsgsToServers, ttl.UpdateMsgsToServers
	se, hy, ha := self.UpdateMsgsToServers, hybrid.UpdateMsgsToServers, hat.UpdateMsgsToServers

	if !(p > i) {
		t.Errorf("Push (%d) not above Invalidation (%d)", p, i)
	}
	if !(i > tt) {
		t.Errorf("Invalidation (%d) not above TTL (%d)", i, tt)
	}
	if !(tt > ha) {
		t.Errorf("TTL (%d) not above HAT (%d)", tt, ha)
	}
	if !(ha > se) {
		t.Errorf("HAT (%d) not above Self (%d)", ha, se)
	}
	// Hybrid ~ TTL (within 30%).
	if ratio := float64(hy) / float64(tt); ratio < 0.7 || ratio > 1.3 {
		t.Errorf("Hybrid/TTL message ratio = %.2f, want ~1", ratio)
	}
}

// Figure 22(b): the hybrid infrastructures unload the provider.
func TestFig22ProviderLoad(t *testing.T) {
	ttl := mustRun(t, baseConfig(t, consistency.MethodTTL, consistency.InfraUnicast))
	hat := mustRun(t, baseConfig(t, consistency.MethodSelfAdaptive, consistency.InfraHybrid))
	if hat.UpdateMsgsFromProvider >= ttl.UpdateMsgsFromProvider/4 {
		t.Errorf("HAT provider msgs (%d) not well below unicast TTL (%d)",
			hat.UpdateMsgsFromProvider, ttl.UpdateMsgsFromProvider)
	}
}

// Figure 23: HAT's update network load (km) is the lightest of the
// TTL-family systems.
func TestFig23NetworkLoad(t *testing.T) {
	ttl := mustRun(t, baseConfig(t, consistency.MethodTTL, consistency.InfraUnicast))
	self := mustRun(t, baseConfig(t, consistency.MethodSelfAdaptive, consistency.InfraUnicast))
	hat := mustRun(t, baseConfig(t, consistency.MethodSelfAdaptive, consistency.InfraHybrid))

	ttlKm := ttl.Accounting.ByClass[netmodel.ClassUpdate].Km
	selfKm := self.Accounting.ByClass[netmodel.ClassUpdate].Km
	hatKm := hat.Accounting.ByClass[netmodel.ClassUpdate].Km
	if hatKm >= ttlKm {
		t.Errorf("HAT update km (%.0f) not below TTL (%.0f)", hatKm, ttlKm)
	}
	if hatKm >= selfKm {
		t.Errorf("HAT update km (%.0f) not below Self (%.0f)", hatKm, selfKm)
	}
}

// Figure 24: with server switching every visit, Push and Invalidation show
// ~zero user-observed inconsistency; TTL the most; HAT below TTL.
func TestFig24InconsistencyObservations(t *testing.T) {
	run := func(m consistency.Method, inf consistency.Infra) float64 {
		cfg := baseConfig(t, m, inf)
		cfg.UserSwitchEveryVisit = true
		return mustRun(t, cfg).InconsistentObservationFrac()
	}
	push := run(consistency.MethodPush, consistency.InfraUnicast)
	ttl := run(consistency.MethodTTL, consistency.InfraUnicast)
	hat := run(consistency.MethodSelfAdaptive, consistency.InfraHybrid)

	if push > 0.01 {
		t.Errorf("Push inconsistency observations = %.4f, want ~0", push)
	}
	if ttl <= push {
		t.Errorf("TTL observations (%.4f) not above Push (%.4f)", ttl, push)
	}
	if hat >= ttl {
		t.Errorf("HAT observations (%.4f) not below TTL (%.4f)", hat, ttl)
	}
}

// The self-adaptive method must actually switch modes during the break.
func TestSelfAdaptiveSwitchesDuringSilence(t *testing.T) {
	cfg := baseConfig(t, consistency.MethodSelfAdaptive, consistency.InfraUnicast)
	self := mustRun(t, cfg)
	ttlCfg := baseConfig(t, consistency.MethodTTL, consistency.InfraUnicast)
	ttl := mustRun(t, ttlCfg)
	// The switch suppresses polls during the 8-minute break: Self must
	// use measurably fewer update messages than plain TTL.
	if self.UpdateMsgsToServers >= ttl.UpdateMsgsToServers {
		t.Errorf("Self msgs (%d) not below TTL (%d)", self.UpdateMsgsToServers, ttl.UpdateMsgsToServers)
	}
}

// Users always eventually converge to the final snapshot.
func TestUsersConverge(t *testing.T) {
	for _, m := range []consistency.Method{
		consistency.MethodTTL, consistency.MethodPush, consistency.MethodInvalidation,
		consistency.MethodSelfAdaptive,
	} {
		cfg := baseConfig(t, m, consistency.InfraUnicast)
		res := mustRun(t, cfg)
		if res.UserObservations == 0 {
			t.Fatalf("%v: no user observations", m)
		}
		for i, v := range res.UserAvgInconsistency {
			if v < 0 {
				t.Fatalf("%v: user %d negative inconsistency", m, i)
			}
		}
	}
}
