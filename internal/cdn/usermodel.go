package cdn

import (
	"fmt"

	"cdnconsistency/internal/audit"
	"cdnconsistency/internal/netmodel"
)

// User-model selectors for Config.UserModel.
const (
	// UserModelExplicit simulates each end-user as an individual actor with
	// its own visit loop — the paper's Section 4 setup, and the default.
	UserModelExplicit = "explicit"
	// UserModelCohort simulates the user population attached to each server
	// as weighted cohorts: one visit event per cohort per period, with all
	// per-user accounting carried in aggregate. Requires Config.Population.
	UserModelCohort = "cohort"
)

// userModel is the seam between the simulation and its end-user population.
// Both implementations drive the same server-side protocol machinery and the
// same per-user accounting (userAgg), so for a shared Population the two are
// event-for-event equivalent; the cohort model just batches users that are
// interchangeable by construction.
type userModel interface {
	// schedule creates the model's users and arms their first visit events.
	schedule() error
	// collect appends the user-side metrics to the run's result.
	collect(res *Result)
	// audit verifies the model's accounting invariants; nil when they hold.
	audit() *audit.Violation
	// totalUsers reports the modeled population size.
	totalUsers() int
}

// newUserModel instantiates the configured model. Config validation has
// already normalized UserModel and checked the cohort preconditions.
func newUserModel(s *simulation) (userModel, error) {
	switch s.cfg.UserModel {
	case "", UserModelExplicit:
		return &explicitUsers{s: s}, nil
	case UserModelCohort:
		return &cohortUsers{s: s}, nil
	default:
		return nil, fmt.Errorf("cdn: unknown user model %q", s.cfg.UserModel)
	}
}

// userAgg is the per-user accounting state, shared verbatim between the
// explicit model (one per user) and the cohort model (one per stratum of
// interchangeable users). Keeping one implementation of the observation
// arithmetic is what makes the equivalence between the models exact rather
// than approximate.
type userAgg struct {
	maxSeen int
	// catch-up accounting mirrors the server metric at visit granularity.
	catchupSum float64
	catchupN   int
	// Figure 24 accounting.
	observations int
	inconsistent int
	// lastFailed marks that the most recent visit failed (dead server, or a
	// serve-stale denial past the federation staleness cap); any served
	// observation clears it. Users still flagged at run end are the
	// stranded_users metric.
	lastFailed bool
}

// avg is the user's mean catch-up delay in seconds.
func (a *userAgg) avg() float64 {
	if a.catchupN == 0 {
		return 0
	}
	return a.catchupSum / float64(a.catchupN)
}

// observeAgg records one observation of version v for each of weight
// identical users sharing the accounting state: catch-up delays for newly
// seen updates and the self-inconsistency counter (content older than
// previously seen, the Figure 24 metric), plus the stale-serve counter
// against the newest published snapshot. The per-user fields advance by one
// observation (every represented user saw the same thing); the global
// counters advance by weight. The observation happens at node i — the
// visited server — whose cell supplies the clock, the published watermark,
// and the stale counter.
func (s *simulation) observeAgg(i int, a *userAgg, weight, v int) {
	c := s.cell(i)
	a.observations++
	a.lastFailed = false
	if v < c.published {
		c.staleObservations += weight
	}
	if v < a.maxSeen {
		a.inconsistent++
		return
	}
	if v > a.maxSeen {
		now := c.eng.Now()
		for id := a.maxSeen + 1; id <= v && id < len(s.publishAt); id++ {
			if at := s.publishAt[id]; at > 0 && now >= at {
				a.catchupSum += (now - at).Seconds()
				a.catchupN++
			}
		}
		a.maxSeen = v
	}
}

// accountVisits books weight end-user requests against the serving node's
// endpoint in the traffic ledger (opt-in via Config.AccountVisits). The
// independent visitsAccounted counter is the auditor's cross-check that no
// batched request is lost on the way into the ledger.
func (s *simulation) accountVisits(nd *node, weight int) {
	if !s.cfg.AccountVisits {
		return
	}
	c := s.cell(nd.idx)
	c.net.Account(nd.ep, s.cfg.LightSizeKB, netmodel.ClassContent, weight)
	c.visitsAccounted += weight
}
