package cdn

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"cdnconsistency/internal/consistency"
	"cdnconsistency/internal/fault"
	"cdnconsistency/internal/federation"
)

// fedTestConfig is auditTestConfig plus a three-provider federation and a
// named fault scenario: failure-aware reactions on, the runtime auditor at
// maximum cadence, so every run doubles as an audited-clean certificate for
// the federation ledgers.
func fedTestConfig(t *testing.T, method consistency.Method, infra consistency.Infra,
	spec federation.Spec, scenario string) Config {
	t.Helper()
	cfg := auditTestConfig(t, method, infra)
	cfg.Federation = &spec
	if scenario != "" {
		fs, err := fault.Scenario(scenario)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Faults = &fs
	}
	return cfg
}

// fedSystems is the federation test matrix: the TTL family (which polls the
// origin and therefore exercises routing, hand-off, and degradation) plus
// Invalidation (origin fetches) and the paper's HAT proposal.
var fedSystems = []struct {
	name   string
	method consistency.Method
	infra  consistency.Infra
}{
	{"TTL", consistency.MethodTTL, consistency.InfraUnicast},
	{"Invalidation", consistency.MethodInvalidation, consistency.InfraUnicast},
	{"Push", consistency.MethodPush, consistency.InfraUnicast},
	{"HAT", consistency.MethodSelfAdaptive, consistency.InfraHybrid},
}

// Every federation scenario must be seed-deterministic: the same
// configuration run twice produces a bit-identical Result, under -race. The
// federation runtime draws no randomness of its own (anycast homing is a
// pure function of locations, the broker iterates in index order), so any
// divergence here means hidden state leaked into the event stream.
func TestFederationDeterminism(t *testing.T) {
	spec := federation.DefaultSpec(3)
	spec.Broker = &federation.Broker{
		Period:     fault.Duration(20 * time.Second),
		Hysteresis: 0.2,
		MinDwell:   fault.Duration(time.Minute),
	}
	for _, sys := range fedSystems {
		for _, scenario := range []string{"provider-storm", "broker-flap"} {
			sys, scenario := sys, scenario
			t.Run(sys.name+"/"+scenario, func(t *testing.T) {
				t.Parallel()
				base := mustRun(t, fedTestConfig(t, sys.method, sys.infra, spec, scenario))
				again := mustRun(t, fedTestConfig(t, sys.method, sys.infra, spec, scenario))
				if !reflect.DeepEqual(base, again) {
					t.Errorf("repeated run diverged:\n  first:  %+v\n  second: %+v", base, again)
				}
			})
		}
	}
}

// The headline robustness claim: an all-providers-down storm ends with zero
// permanently-stranded users. Under the default spec (StaleCap 0 = unlimited
// serve-stale) degraded servers keep answering visits with stale content, so
// users are never turned away; once the storm lifts, the next successful
// origin contact closes every degradation interval. The run must also be
// audit-clean — the degradation/switch/hand-off ledgers balance throughout.
func TestFederationStormServesStale(t *testing.T) {
	res := mustRun(t, fedTestConfig(t, consistency.MethodTTL, consistency.InfraUnicast,
		federation.DefaultSpec(3), "provider-storm"))
	if res.AuditChecks == 0 {
		t.Fatal("auditor never ran")
	}
	if res.StrandedUsers != 0 {
		t.Errorf("storm stranded %d users, want 0 (serve-stale with no cap)", res.StrandedUsers)
	}
	if res.DegradedSeconds <= 0 {
		t.Errorf("DegradedSeconds = %v, want > 0 (the storm's overlap takes all providers down)", res.DegradedSeconds)
	}
	if res.DegradedEnters == 0 || res.DegradedEnters != res.DegradedExits {
		t.Errorf("degradation intervals unbalanced: %d enters, %d exits", res.DegradedEnters, res.DegradedExits)
	}
	if res.PeerHandoffs == 0 {
		t.Error("PeerHandoffs = 0, want > 0 (staggered storm leaves peers alive to hand off to)")
	}
}

// A staleness cap turns long degradation into failed visits: with every
// provider down for a third of the run and a 10-second cap, visits past the
// cap are denied, so the capped run must fail strictly more visits than the
// uncapped one. Users still recover once the storm lifts — no one ends the
// run stranded in either mode.
func TestFederationStaleCapDeniesVisits(t *testing.T) {
	storm := fault.Spec{ProviderStorm: &fault.ProviderStorm{StartFrac: 0.35, DurFrac: 0.3}}
	run := func(cap time.Duration) *Result {
		spec := federation.DefaultSpec(3)
		spec.StaleCap = fault.Duration(cap)
		cfg := fedTestConfig(t, consistency.MethodTTL, consistency.InfraUnicast, spec, "")
		cfg.Faults = &storm
		return mustRun(t, cfg)
	}
	uncapped := run(0)
	capped := run(10 * time.Second)
	if capped.FailedVisits <= uncapped.FailedVisits {
		t.Errorf("capped run failed %d visits, uncapped %d; want capped > uncapped",
			capped.FailedVisits, uncapped.FailedVisits)
	}
	if uncapped.StrandedUsers != 0 || capped.StrandedUsers != 0 {
		t.Errorf("stranded users: uncapped %d, capped %d, want 0/0 (storm ends before the horizon)",
			uncapped.StrandedUsers, capped.StrandedUsers)
	}
}

// Broker hysteresis and dwell exist to suppress flapping: under the
// broker-flap scenario (provider 0 cycling down/up), a broker with a dwell
// floor and a distance-advantage threshold must re-home servers strictly
// fewer times than a trigger-happy broker with neither, and both runs must
// stay audit-clean.
func TestFederationBrokerDwellSuppressesFlapping(t *testing.T) {
	run := func(b federation.Broker) *Result {
		spec := federation.DefaultSpec(3)
		spec.Broker = &b
		return mustRun(t, fedTestConfig(t, consistency.MethodTTL, consistency.InfraUnicast,
			spec, "broker-flap"))
	}
	eager := run(federation.Broker{Period: fault.Duration(15 * time.Second)})
	damped := run(federation.Broker{
		Period:     fault.Duration(15 * time.Second),
		Hysteresis: 0.5,
		MinDwell:   fault.Duration(4 * time.Minute),
	})
	if eager.ProviderSwitches == 0 {
		t.Fatal("eager broker never switched providers under broker-flap")
	}
	if damped.ProviderSwitches >= eager.ProviderSwitches {
		t.Errorf("damped broker switched %d times, eager %d; want damped < eager",
			damped.ProviderSwitches, eager.ProviderSwitches)
	}
}

// Per-provider propagation lag is visible end-to-end: when every provider
// serves new versions a minute late, users observe strictly more stale
// content than with immediate propagation, all else equal.
func TestFederationPropagationLagIncreasesStaleness(t *testing.T) {
	run := func(lag time.Duration) *Result {
		spec := federation.DefaultSpec(3)
		for i := range spec.Providers {
			spec.Providers[i].Propagation = fault.Duration(lag)
		}
		return mustRun(t, fedTestConfig(t, consistency.MethodTTL, consistency.InfraUnicast, spec, ""))
	}
	prompt := run(0)
	lagged := run(time.Minute)
	if lagged.StaleObservations <= prompt.StaleObservations {
		t.Errorf("lagged propagation saw %d stale observations, immediate %d; want lagged > immediate",
			lagged.StaleObservations, prompt.StaleObservations)
	}
}

// A fault-free federated run with per-provider TTL overrides completes
// audit-clean: homing, per-provider poll cadences, and the publication
// fan-out to every provider hold the conservation invariants without any
// outage in play.
func TestFederationQuiescentAuditClean(t *testing.T) {
	spec := federation.DefaultSpec(3)
	spec.Providers[1].TTL = fault.Duration(30 * time.Second)
	spec.Providers[2].TTL = fault.Duration(2 * time.Minute)
	for _, sys := range fedSystems {
		sys := sys
		t.Run(sys.name, func(t *testing.T) {
			t.Parallel()
			res := mustRun(t, fedTestConfig(t, sys.method, sys.infra, spec, ""))
			if res.AuditChecks == 0 {
				t.Fatal("auditor never ran")
			}
			if res.DegradedSeconds != 0 || res.DegradedEnters != 0 {
				t.Errorf("fault-free run degraded: %v seconds over %d intervals",
					res.DegradedSeconds, res.DegradedEnters)
			}
		})
	}
}

// The cohort user model must remain exactly equivalent to the explicit model
// under federation: serve-stale denials, deferred visit-polls routed to
// federated providers, and failover re-homing all batch without drift. This
// extends the PR-5 metamorphic suite to the federated origin layer and, via
// the shared config, certifies both models audit-clean under a storm.
func TestFederationCohortEquivalence(t *testing.T) {
	const seed = 3
	pop := equivPopulation(t, 12, 110, seed)
	for _, sys := range fedSystems {
		sys := sys
		t.Run(sys.name, func(t *testing.T) {
			t.Parallel()
			cfg := equivConfig(t, sys.method, sys.infra, seed, pop, "provider-storm")
			spec := federation.DefaultSpec(3)
			cfg.Federation = &spec
			exp, coh := runPair(t, cfg)
			assertEquivalent(t, pop, exp, coh)
			fed := []struct {
				name   string
				ev, cv int
			}{
				{"DegradedEnters", exp.DegradedEnters, coh.DegradedEnters},
				{"DegradedExits", exp.DegradedExits, coh.DegradedExits},
				{"ProviderSwitches", exp.ProviderSwitches, coh.ProviderSwitches},
				{"PeerHandoffs", exp.PeerHandoffs, coh.PeerHandoffs},
				{"StrandedUsers", exp.StrandedUsers, coh.StrandedUsers},
			}
			for _, c := range fed {
				if c.ev != c.cv {
					t.Errorf("%s: explicit %d, cohort %d", c.name, c.ev, c.cv)
				}
			}
			if exp.DegradedSeconds != coh.DegradedSeconds {
				t.Errorf("DegradedSeconds: explicit %v, cohort %v", exp.DegradedSeconds, coh.DegradedSeconds)
			}
		})
	}
}

// Federation composes with a fixed set of the simulation's modes; the rest
// are rejected up front with an error naming the conflict.
func TestFederationConfigGates(t *testing.T) {
	spec := federation.DefaultSpec(2)
	cases := []struct {
		name string
		mut  func(*Config)
		want string
	}{
		{
			name: "sharded",
			mut:  func(c *Config) { c.Shards = 2 },
			want: "sharded runs cannot use Federation",
		},
		{
			name: "lease",
			mut:  func(c *Config) { c.Method = consistency.MethodLease },
			want: "incompatible with MethodLease",
		},
		{
			name: "regime",
			mut:  func(c *Config) { c.Method = consistency.MethodRegime },
			want: "incompatible with MethodRegime",
		},
		{
			name: "broadcast",
			mut: func(c *Config) {
				c.Method = consistency.MethodPush
				c.Infra = consistency.InfraBroadcast
			},
			want: "incompatible with InfraBroadcast",
		},
		{
			name: "invalid spec",
			mut:  func(c *Config) { c.Federation = &federation.Spec{} },
			want: "at least one provider",
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			cfg := baseConfig(t, consistency.MethodTTL, consistency.InfraUnicast)
			cfg.Federation = &spec
			tc.mut(&cfg)
			_, err := Run(cfg)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Run() = %v, want error containing %q", err, tc.want)
			}
		})
	}
}
