package cdn

import (
	"reflect"
	"testing"

	"cdnconsistency/internal/consistency"
	"cdnconsistency/internal/fault"
	"cdnconsistency/internal/topology"
	"cdnconsistency/internal/workload"
)

// The shard-count invariance suite: a sharded run's Result must be a pure
// function of (seed, partition). The partition is fixed by ShardCells, so
// varying only Shards — the worker count draining those cells — must leave
// every field of the Result bit-identical, under -race. That is the whole
// point of the conservative-window design: worker scheduling can reorder
// wall-clock execution but never simulation outcomes.

// shardConfig mirrors equivConfig with the sharded engine enabled (the
// auditor composes with sharding since its sweeps moved to window barriers;
// audited variants live in audit_test.go).
func shardConfig(t *testing.T, method consistency.Method, infra consistency.Infra,
	seed int64, pop *workload.Population, scenario string, shards, cells int) Config {
	t.Helper()
	updates, err := workload.Schedule(testGame(), seed)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Method:        method,
		Infra:         infra,
		Topology:      topology.Config{Servers: len(pop.Servers), UsersPerServer: 1, Seed: seed},
		Clusters:      4,
		Updates:       updates,
		Seed:          seed,
		Population:    pop,
		AccountVisits: true,
		Shards:        shards,
		ShardCells:    cells,
	}
	if scenario != "" {
		spec, err := fault.Scenario(scenario)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Faults = &spec
		cfg.Failover = true
	}
	return cfg
}

// shardSystems is the headline four-system matrix the issue's acceptance
// criterion names (multicast repair paths are serial-only and gated off).
var shardSystems = []struct {
	name   string
	method consistency.Method
	infra  consistency.Infra
}{
	{"TTL", consistency.MethodTTL, consistency.InfraUnicast},
	{"Invalidation", consistency.MethodInvalidation, consistency.InfraUnicast},
	{"Push", consistency.MethodPush, consistency.InfraUnicast},
	{"HAT", consistency.MethodSelfAdaptive, consistency.InfraHybrid},
}

// TestShardCountInvariance is the core matrix: four systems under every
// built-in fault scenario (plus fault-free), run with 1, 2, 4, and 8 workers
// over the same 8-cell partition. Every Result — counters, per-user and
// per-server series, the traffic ledger, even the processed-event count —
// must match the 1-worker run exactly.
func TestShardCountInvariance(t *testing.T) {
	scenarios := append([]string{""}, fault.ScenarioNames()...)
	const seed = 3
	pop := equivPopulation(t, 12, 110, seed)
	for _, sys := range shardSystems {
		for _, scenario := range scenarios {
			name := sys.name + "/none"
			if scenario != "" {
				name = sys.name + "/" + scenario
			}
			sys, scenario := sys, scenario
			t.Run(name, func(t *testing.T) {
				t.Parallel()
				var base *Result
				for _, shards := range []int{1, 2, 4, 8} {
					cfg := shardConfig(t, sys.method, sys.infra, seed, pop, scenario, shards, 8)
					cfg.UserModel = UserModelCohort
					res := mustRun(t, cfg)
					if base == nil {
						base = res
						continue
					}
					if !reflect.DeepEqual(base, res) {
						t.Errorf("shards=%d diverged from shards=1:\n  1 workers: %+v\n  %d workers: %+v",
							shards, base, shards, res)
					}
				}
			})
		}
	}
}

// TestShardedCohortEquivalence re-runs the PR-5 metamorphic check under the
// sharded engine: with the same population and partition, the cohort model
// must still reconstruct the explicit model exactly. This pins the user-model
// seam and the sharded protocol forks (visit-poll, subscription snapshots)
// in one shot.
func TestShardedCohortEquivalence(t *testing.T) {
	const seed = 3
	pop := equivPopulation(t, 12, 110, seed)
	for _, sys := range shardSystems {
		for _, scenario := range []string{"", "crash", "outage"} {
			name := sys.name + "/none"
			if scenario != "" {
				name = sys.name + "/" + scenario
			}
			sys, scenario := sys, scenario
			t.Run(name, func(t *testing.T) {
				t.Parallel()
				cfg := shardConfig(t, sys.method, sys.infra, seed, pop, scenario, 4, 8)
				exp, coh := runPair(t, cfg)
				assertEquivalent(t, pop, exp, coh)
			})
		}
	}
}

// TestShardedSerialOracle holds the sharded engine to the serial engine on
// everything that is schedule-driven rather than RNG-stream-driven. The two
// modes draw from different RNG streams by construction (per-cell engines),
// so jittered timings differ — but under fault-free Push with a population
// (no random offsets anywhere in the user schedule), message counts, visit
// counts, and topology shape are pure functions of the schedule and must
// agree exactly with the serial oracle.
func TestShardedSerialOracle(t *testing.T) {
	const seed = 3
	pop := equivPopulation(t, 12, 110, seed)
	serialCfg := shardConfig(t, consistency.MethodPush, consistency.InfraUnicast, seed, pop, "", 0, 0)
	serialCfg.UserModel = UserModelCohort
	shardedCfg := shardConfig(t, consistency.MethodPush, consistency.InfraUnicast, seed, pop, "", 4, 8)
	shardedCfg.UserModel = UserModelCohort
	serial := mustRun(t, serialCfg)
	sharded := mustRun(t, shardedCfg)
	checks := []struct {
		name   string
		sv, hv int
	}{
		{"TreeDepth", serial.TreeDepth, sharded.TreeDepth},
		{"Supernodes", serial.Supernodes, sharded.Supernodes},
		{"UserObservations", serial.UserObservations, sharded.UserObservations},
		{"UpdateMsgsToServers", serial.UpdateMsgsToServers, sharded.UpdateMsgsToServers},
		{"UpdateMsgsFromProvider", serial.UpdateMsgsFromProvider, sharded.UpdateMsgsFromProvider},
		{"Crashes", serial.Crashes, sharded.Crashes},
		{"Recoveries", serial.Recoveries, sharded.Recoveries},
		{"FailedServers", serial.FailedServers, sharded.FailedServers},
		{"LiveServers", serial.LiveServers, sharded.LiveServers},
		{"FailedVisits", serial.FailedVisits, sharded.FailedVisits},
	}
	for _, c := range checks {
		if c.sv != c.hv {
			t.Errorf("%s: serial %d, sharded %d", c.name, c.sv, c.hv)
		}
	}
}

// TestShardedStaticWindowInvariance pins the ShardStaticWindows escape hatch:
// with adaptive windowing disabled, sharded runs must still be a pure function
// of (seed, partition) at any worker count. The flag is part of the
// simulation's identity — it selects a different (equally valid) simulation
// than the adaptive default, so the suite checks invariance within the mode,
// never equality across modes.
func TestShardedStaticWindowInvariance(t *testing.T) {
	const seed = 3
	pop := equivPopulation(t, 12, 110, seed)
	for _, sys := range shardSystems {
		for _, scenario := range []string{"", "crash", "mixed"} {
			name := sys.name + "/none"
			if scenario != "" {
				name = sys.name + "/" + scenario
			}
			sys, scenario := sys, scenario
			t.Run(name, func(t *testing.T) {
				t.Parallel()
				var base *Result
				for _, shards := range []int{1, 4} {
					cfg := shardConfig(t, sys.method, sys.infra, seed, pop, scenario, shards, 8)
					cfg.UserModel = UserModelCohort
					cfg.ShardStaticWindows = true
					res := mustRun(t, cfg)
					if base == nil {
						base = res
						continue
					}
					if !reflect.DeepEqual(base, res) {
						t.Errorf("static windows, shards=%d diverged from shards=1:\n  1 workers: %+v\n  %d workers: %+v",
							shards, base, shards, res)
					}
				}
			})
		}
	}
}

// TestShardedConfigGates pins the serial-only feature gates: options whose
// correctness depends on cross-cell state being readable mid-event must be
// rejected up front, not silently miscomputed.
func TestShardedConfigGates(t *testing.T) {
	const seed = 3
	pop := equivPopulation(t, 12, 110, seed)
	base := shardConfig(t, consistency.MethodTTL, consistency.InfraUnicast, seed, pop, "", 2, 4)
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"dns-routing", func(c *Config) { c.UseDNSRouting = true }},
		{"switch-every-visit", func(c *Config) { c.UserSwitchEveryVisit = true }},
		{"negative-shards", func(c *Config) { c.Shards = -1 }},
		{"negative-cells", func(c *Config) { c.ShardCells = -1 }},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			cfg := base
			tc.mut(&cfg)
			if _, err := Run(cfg); err == nil {
				t.Fatalf("%s: sharded run accepted a serial-only option", tc.name)
			}
		})
	}
}
