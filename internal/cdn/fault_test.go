package cdn

import (
	"testing"
	"time"

	"cdnconsistency/internal/consistency"
	"cdnconsistency/internal/fault"
)

func churnSpec(frac float64, downFor time.Duration) *fault.Spec {
	return &fault.Spec{RandomCrashes: &fault.RandomCrashes{
		Frac: frac, RecoverAfter: fault.Duration(downFor),
	}}
}

func mixedSpec() *fault.Spec {
	return &fault.Spec{
		RandomCrashes:   &fault.RandomCrashes{Frac: 0.15, RecoverAfter: fault.Duration(3 * time.Minute)},
		ProviderOutages: []fault.Window{{StartFrac: 0.7, DurFrac: 0.1}},
		Partitions:      []fault.Partition{{StartFrac: 0.25, DurFrac: 0.15, RandomISPs: 3}},
	}
}

// runSim mirrors Run but keeps the simulation for post-run inspection.
func runSim(t *testing.T, cfg Config) (*Result, *simulation) {
	t.Helper()
	cfg, err := cfg.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	s, err := newSimulation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.run()
	if err != nil {
		t.Fatal(err)
	}
	return res, s
}

// Property: after an arbitrary churn of crash/recover events on the repaired
// multicast tree, the end state is coherent — the alive vector agrees with
// the per-node down flags, no live node hangs under a dead parent, and the
// tree still validates (acyclic, degree-bounded, consistent child links).
func TestFaultChurnTreeInvariants(t *testing.T) {
	for _, seed := range []int64{1, 7, 23, 99} {
		cfg := baseConfig(t, consistency.MethodTTL, consistency.InfraMulticast)
		cfg.Seed = seed
		cfg.Topology.Seed = seed
		cfg.RepairTree = true
		cfg.Failover = true
		cfg.Faults = churnSpec(0.2, 2*time.Minute)
		res, s := runSim(t, cfg)

		if res.Crashes == 0 {
			t.Fatalf("seed %d: no crashes injected", seed)
		}
		if res.Recoveries != res.Crashes {
			t.Errorf("seed %d: recoveries = %d, crashes = %d", seed, res.Recoveries, res.Crashes)
		}
		for i := 1; i < len(s.nodes); i++ {
			if s.alive[i] == s.nodes[i].down {
				t.Errorf("seed %d: node %d alive=%v but down=%v", seed, i, s.alive[i], s.nodes[i].down)
			}
			if s.nodes[i].down {
				continue
			}
			if p := s.tree.Parent(i); p > 0 && s.nodes[p].down {
				t.Errorf("seed %d: live node %d parented under dead node %d", seed, i, p)
			}
		}
		if err := s.tree.Validate(cfg.TreeDegree, s.alive); err != nil {
			t.Errorf("seed %d: tree invalid after churn: %v", seed, err)
		}
	}
}

// Regression: a crash-recovered server converges back to the provider's
// content within one server TTL plus propagation slack — the recovery
// restarts the poll loop immediately rather than waiting out stale state.
func TestFaultRecoveryConvergesWithinTTL(t *testing.T) {
	cfg := baseConfig(t, consistency.MethodTTL, consistency.InfraUnicast)
	cfg.Failover = true
	cfg.Faults = &fault.Spec{Crashes: []fault.Crash{
		{Server: 5, AtFrac: 0.4, RecoverAfter: fault.Duration(2 * time.Minute)},
	}}
	res, _ := runSim(t, cfg)

	if res.Crashes != 1 || res.Recoveries != 1 {
		t.Fatalf("crashes = %d, recoveries = %d, want 1 and 1", res.Crashes, res.Recoveries)
	}
	bound := (cfg.ServerTTL + 30*time.Second).Seconds()
	if got := res.RecoverySeconds[0]; got > bound {
		t.Errorf("recovery took %.1fs, want <= %.1fs (one TTL + propagation)", got, bound)
	}
}

// End-to-end: failure-aware failover bounds the user-visible damage of a
// compound fault scenario relative to the ride-it-out baseline with the
// identical seed, topology, and fault schedule.
func TestFaultFailoverBoundsUserImpact(t *testing.T) {
	run := func(failover bool) *Result {
		cfg := baseConfig(t, consistency.MethodTTL, consistency.InfraUnicast)
		cfg.Faults = mixedSpec()
		cfg.Failover = failover
		return mustRun(t, cfg)
	}
	off := run(false)
	on := run(true)

	if off.Crashes != on.Crashes {
		t.Fatalf("fault schedules diverged: %d vs %d crashes", off.Crashes, on.Crashes)
	}
	if on.UserFailovers == 0 {
		t.Error("failover run performed no user failovers")
	}
	if on.FailedVisits >= off.FailedVisits {
		t.Errorf("failed visits with failover = %d, want < %d (baseline)", on.FailedVisits, off.FailedVisits)
	}
	if on.MeanUserInconsistency() > off.MeanUserInconsistency() {
		t.Errorf("user inconsistency with failover = %.3f, want <= %.3f (baseline)",
			on.MeanUserInconsistency(), off.MeanUserInconsistency())
	}
}

// Identical seeds must give bit-identical faulted runs: the fault schedule
// draws from its own RNG stream and every reaction is event-driven.
func TestFaultRunsDeterministic(t *testing.T) {
	run := func() *Result {
		cfg := baseConfig(t, consistency.MethodTTL, consistency.InfraUnicast)
		cfg.Faults = mixedSpec()
		cfg.Failover = true
		return mustRun(t, cfg)
	}
	a, b := run(), run()
	if a.Events != b.Events {
		t.Errorf("events differ: %d vs %d", a.Events, b.Events)
	}
	if a.Crashes != b.Crashes || a.Recoveries != b.Recoveries ||
		a.FailedVisits != b.FailedVisits || a.StaleObservations != b.StaleObservations {
		t.Errorf("fault counters differ: %+v vs %+v",
			[4]int{a.Crashes, a.Recoveries, a.FailedVisits, a.StaleObservations},
			[4]int{b.Crashes, b.Recoveries, b.FailedVisits, b.StaleObservations})
	}
	if a.MeanUserInconsistency() != b.MeanUserInconsistency() {
		t.Errorf("user inconsistency differs: %v vs %v", a.MeanUserInconsistency(), b.MeanUserInconsistency())
	}
}

// Every method survives crash-recovery churn with failover: the run
// completes and each crashed server re-syncs before the horizon.
func TestFaultChurnAcrossMethods(t *testing.T) {
	cases := []struct {
		method consistency.Method
		infra  consistency.Infra
	}{
		{consistency.MethodTTL, consistency.InfraUnicast},
		{consistency.MethodPush, consistency.InfraUnicast},
		{consistency.MethodInvalidation, consistency.InfraUnicast},
		{consistency.MethodSelfAdaptive, consistency.InfraUnicast},
		{consistency.MethodAdaptiveTTL, consistency.InfraUnicast},
		{consistency.MethodLease, consistency.InfraUnicast},
		{consistency.MethodRegime, consistency.InfraUnicast},
		{consistency.MethodPush, consistency.InfraMulticast},
		{consistency.MethodTTL, consistency.InfraHybrid},
		{consistency.MethodSelfAdaptive, consistency.InfraHybrid},
		{consistency.MethodPush, consistency.InfraBroadcast},
	}
	for _, c := range cases {
		c := c
		t.Run(c.method.String()+"/"+c.infra.String(), func(t *testing.T) {
			t.Parallel()
			cfg := baseConfig(t, c.method, c.infra)
			cfg.Failover = true
			cfg.Faults = churnSpec(0.1, 90*time.Second)
			res := mustRun(t, cfg)
			if res.Crashes == 0 {
				t.Fatal("no crashes injected")
			}
			if res.Recoveries != res.Crashes {
				t.Errorf("recoveries = %d, crashes = %d", res.Recoveries, res.Crashes)
			}
		})
	}
}

// A provider outage under a subscription-based method triggers the TTL
// watchdog fallback; without failover the subscribed servers silently serve
// stale content for the whole outage.
func TestFaultProviderOutageTTLFallback(t *testing.T) {
	run := func(failover bool) *Result {
		cfg := baseConfig(t, consistency.MethodSelfAdaptive, consistency.InfraUnicast)
		// Sparse visits keep servers in the subscribed (invalidation) state
		// between updates, so the outage catches them relying on provider
		// notifications; the outage window overlaps a play phase.
		cfg.UserTTL = 5 * time.Minute
		cfg.Failover = failover
		cfg.Faults = &fault.Spec{ProviderOutages: []fault.Window{{StartFrac: 0.5, DurFrac: 0.2}}}
		return mustRun(t, cfg)
	}
	on := run(true)
	if on.TTLFallbacks == 0 {
		t.Error("provider outage triggered no TTL fallbacks under failover")
	}
	off := run(false)
	if off.TTLFallbacks != 0 {
		t.Errorf("TTL fallbacks = %d without failover, want 0", off.TTLFallbacks)
	}
}

// Faults off must leave every legacy metric untouched: the fault hooks are
// pass-through when no schedule is compiled.
func TestNoFaultsMatchesBaseline(t *testing.T) {
	base := mustRun(t, baseConfig(t, consistency.MethodPush, consistency.InfraUnicast))
	cfg := baseConfig(t, consistency.MethodPush, consistency.InfraUnicast)
	cfg.Faults = &fault.Spec{}
	cfg.Failover = true
	faultless := mustRun(t, cfg)
	if base.Events != faultless.Events {
		t.Errorf("events differ with empty fault spec: %d vs %d", base.Events, faultless.Events)
	}
	if base.UpdateMsgsToServers != faultless.UpdateMsgsToServers {
		t.Errorf("update messages differ: %d vs %d", base.UpdateMsgsToServers, faultless.UpdateMsgsToServers)
	}
	if faultless.Crashes != 0 || faultless.FailedVisits != 0 {
		t.Errorf("spurious fault activity: %d crashes, %d failed visits", faultless.Crashes, faultless.FailedVisits)
	}
}
