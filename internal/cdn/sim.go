package cdn

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"cdnconsistency/internal/consistency"
	"cdnconsistency/internal/dns"
	"cdnconsistency/internal/fault"
	"cdnconsistency/internal/geo"
	"cdnconsistency/internal/netmodel"
	"cdnconsistency/internal/overlay"
	"cdnconsistency/internal/sim"
	"cdnconsistency/internal/topology"
)

// node is one participant: index 0 is the provider, 1..N are content
// servers (some of which are supernodes under the hybrid infrastructure).
type node struct {
	idx int
	ep  netmodel.Endpoint

	version int  // newest snapshot held
	valid   bool // false after an invalidation until the next fetch

	// Invalidation fetch deduplication: children waiting for our answer
	// while our own fetch is in flight, plus local completion callbacks
	// (deferred user observations).
	fetchInFlight  bool
	waiters        []int
	fetchCallbacks []func()

	// Per-method state.
	auto  *consistency.SelfAdaptive
	adapt *consistency.AdaptiveTTL
	// Regime-method state: the controller and its cached decision on
	// servers; the push-regime registry on the provider.
	rc       *consistency.RegimeController
	regime   consistency.Regime
	pushSubs map[int]bool
	// subscribers tracks children that switched to Invalidation under the
	// self-adaptive method; the value records whether the pending
	// invalidation notice was already sent (updates aggregate until the
	// child's first visit, Section 5.1).
	subscribers map[int]bool

	// pollStopped marks self-adaptive nodes whose TTL loop is paused.
	pollStopped bool

	// Ground-truth inconsistency accounting.
	catchupSum float64
	catchupN   int

	isSupernode bool
	// down marks a crash-stopped server: it no longer responds, polls,
	// forwards, or serves visits.
	down bool
	// gen is the node's incarnation, bumped on every crash and recovery.
	// Scheduled continuations (poll loops, timeouts, epoch timers) capture
	// the generation they were armed under and become no-ops when it
	// changes, so a recovery never resurrects a pre-crash loop alongside
	// its own.
	gen int
	// fetchSeq / leaseSeq identify the in-flight fetch or lease renewal so
	// its timeout cannot abort a later operation.
	fetchSeq int
	leaseSeq int
	// Crash-recovery bookkeeping: a recovering node has lost its state and
	// counts as recovered once it re-syncs to syncTarget (the provider's
	// version at recovery time).
	recovering bool
	syncTarget int
	recoverAt  time.Duration
	// watchdogArmed guards the single TTL-fallback watchdog per node.
	watchdogArmed bool

	// Cooperative-lease state: on servers, the local lease expiry and a
	// renewal-in-flight flag; on the provider, the leaseholder registry.
	leaseExpiry   time.Duration
	leaseRenewing bool
	leases        map[int]time.Duration
}

type simulation struct {
	cfg  Config
	topo *topology.Topology
	tree *overlay.Tree

	// Execution cells (see sharded.go). A serial run has exactly one cell
	// holding every node; a sharded run has one cell per topology partition,
	// driven by shEng's conservative window barrier. cellOf maps node index
	// to owning cell; all clocks, RNG draws, network traffic, and counters
	// route through the owning cell.
	cells  []*cellState
	cellOf []int
	shEng  *sim.Sharded

	nodes []*node
	// um is the end-user population model (explicit actors or weighted
	// cohorts); see usermodel.go.
	um userModel

	// locs and alive support multicast tree repair after failures.
	locs  []geo.Point
	alive []bool
	auth  *dns.Authoritative

	// Broadcast flooding clusters.
	clusterOf      []int
	clusterMembers [][]int

	// publishAt[snapshot] is the absolute publication time (snapshot ids
	// are 1-based; index 0 unused).
	publishAt []time.Duration
	horizon   time.Duration

	// Fault-injection state: the compiled schedule and the provider-outage
	// flag with its deferred dissemination. Provider state is only ever
	// touched from the provider's cell (cell 0), so these need no sharding.
	faultEvents   []fault.Event
	providerDown  bool
	pendingDissem bool

	// fed is the multi-CDN federation runtime, nil unless cfg.Federation is
	// set (serial-only; withDefaults rejects Federation under sharding).
	// With fed == nil every classic code path runs unchanged.
	fed *fedState

	// aud is the runtime invariant auditor, nil unless cfg.Audit is set.
	// Serial runs sweep via engine events; sharded runs sweep at window
	// barriers (see auditor.barrier).
	aud *auditor
}

func newSimulation(cfg Config) (*simulation, error) {
	if len(cfg.Updates) == 0 {
		// Without at least one publication there is no horizon to run to
		// (and no snapshot to disseminate); indexing the schedule below
		// would panic.
		return nil, fmt.Errorf("cdn: no updates configured")
	}
	topo := cfg.Topo
	if topo == nil {
		var err error
		topo, err = topology.Generate(cfg.Topology)
		if err != nil {
			return nil, fmt.Errorf("cdn: %w", err)
		}
	}
	s := &simulation{
		cfg:  cfg,
		topo: topo,
	}

	// Node 0 is the provider.
	s.nodes = append(s.nodes, &node{
		idx:   0,
		ep:    endpoint("provider", topo.Provider.Loc, topo.Provider.ISP),
		valid: true,
	})
	for i, srv := range topo.Servers {
		s.nodes = append(s.nodes, &node{
			idx:   i + 1,
			ep:    endpoint(srv.ID, srv.Loc, srv.ISP),
			valid: true,
		})
	}

	s.locs = make([]geo.Point, len(s.nodes))
	s.alive = make([]bool, len(s.nodes))
	for i, nd := range s.nodes {
		s.locs[i] = nd.ep.Loc
		s.alive[i] = true
	}

	if err := s.buildTree(); err != nil {
		return nil, err
	}

	// Cells come after the tree (the partition follows the communication
	// topology) but before anything that draws randomness: in serial mode
	// the one cell's engine is seeded exactly as the classic engine was, so
	// every setup-time draw below consumes the same stream positions.
	if err := s.initCells(); err != nil {
		return nil, err
	}

	if cfg.Federation != nil {
		// The federation runtime draws no randomness (anycast homing is a
		// pure function of locations), so the engine RNG stream below is
		// untouched by its construction.
		s.fed = newFedState(s, cfg.Federation)
	}

	if cfg.UseDNSRouting {
		entries := make([]dns.ServerEntry, 0, len(topo.Servers))
		for i, srv := range topo.Servers {
			entries = append(entries, dns.ServerEntry{Index: i + 1, Loc: srv.Loc})
		}
		auth, err := dns.NewAuthoritative(entries, 3, s.rng(0))
		if err != nil {
			return nil, fmt.Errorf("cdn: %w", err)
		}
		s.auth = auth
	}

	s.publishAt = make([]time.Duration, len(cfg.Updates)+1)
	for _, u := range cfg.Updates {
		if u.Snapshot <= 0 || u.Snapshot >= len(s.publishAt) {
			return nil, fmt.Errorf("cdn: update snapshot %d outside 1..%d", u.Snapshot, len(cfg.Updates))
		}
		s.publishAt[u.Snapshot] = cfg.StartDelay + u.At
	}
	last := cfg.Updates[len(cfg.Updates)-1].At
	s.horizon = cfg.StartDelay + last + cfg.HorizonSlack

	if cfg.Population != nil && len(cfg.Population.Servers) != len(topo.Servers) {
		return nil, fmt.Errorf("cdn: population spans %d servers, topology has %d",
			len(cfg.Population.Servers), len(topo.Servers))
	}
	um, err := newUserModel(s)
	if err != nil {
		return nil, err
	}
	s.um = um

	if cfg.Faults != nil && !cfg.Faults.Empty() {
		isps := make([]int, len(topo.Servers))
		for i, srv := range topo.Servers {
			isps[i] = srv.ISP
		}
		// A dedicated RNG stream (not the engine's) keeps topology and user
		// schedules identical between runs with and without faults.
		frng := rand.New(rand.NewSource(cfg.Seed + 0x0fa17))
		providers := 0
		if cfg.Federation != nil {
			providers = len(cfg.Federation.Providers)
		}
		events, err := fault.Compile(*cfg.Faults, fault.Env{
			Servers:   len(topo.Servers),
			Locs:      s.locs[1:],
			ISPs:      isps,
			Horizon:   s.horizon,
			Providers: providers,
		}, frng)
		if err != nil {
			return nil, fmt.Errorf("cdn: %w", err)
		}
		s.faultEvents = events
	}
	return s, nil
}

func endpoint(id string, loc geo.Point, isp int) netmodel.Endpoint {
	return netmodel.Endpoint{ID: id, Loc: loc, ISP: isp}
}

// buildTree constructs the update infrastructure over node indices.
func (s *simulation) buildTree() error {
	n := len(s.nodes) - 1
	switch s.cfg.Infra {
	case consistency.InfraUnicast:
		t, err := overlay.BuildUnicastStar(n)
		if err != nil {
			return err
		}
		s.tree = t
	case consistency.InfraMulticast:
		locs := make([]geo.Point, len(s.nodes))
		for i, nd := range s.nodes {
			locs[i] = nd.ep.Loc
		}
		t, err := overlay.BuildMulticast(locs, s.cfg.TreeDegree)
		if err != nil {
			return err
		}
		s.tree = t
	case consistency.InfraHybrid:
		return s.buildHybridTree()
	case consistency.InfraBroadcast:
		t, err := overlay.BuildUnicastStar(n)
		if err != nil {
			return err
		}
		s.tree = t
		return s.buildBroadcastClusters()
	default:
		return fmt.Errorf("cdn: unsupported infra %v", s.cfg.Infra)
	}
	return nil
}

// buildHybridTree implements Section 5.2: Hilbert-curve clusters, one
// supernode each, supernodes in a proximity-aware k-ary multicast tree under
// the provider, members in a star under their supernode.
func (s *simulation) buildHybridTree() error {
	clusters, err := s.topo.HilbertClusters(s.cfg.Clusters)
	if err != nil {
		return err
	}
	supernode := make([]int, len(clusters)) // node index of each cluster's supernode
	for ci, cl := range clusters {
		sn, err := s.topo.ElectSupernode(cl)
		if err != nil {
			return err
		}
		supernode[ci] = sn + 1 // node indices are server index + 1
		s.nodes[sn+1].isSupernode = true
	}

	// Proximity multicast over [provider, supernodes...].
	locs := make([]geo.Point, 0, len(supernode)+1)
	locs = append(locs, s.nodes[0].ep.Loc)
	for _, sn := range supernode {
		locs = append(locs, s.nodes[sn].ep.Loc)
	}
	snTree, err := overlay.BuildMulticast(locs, s.cfg.SupernodeDegree)
	if err != nil {
		return err
	}

	// Translate into a parent array over all nodes.
	parents := make([]int, len(s.nodes))
	parents[0] = overlay.NoParent
	for ci, sn := range supernode {
		p := snTree.Parent(ci + 1) // position in the supernode tree
		if p == 0 {
			parents[sn] = 0
		} else {
			parents[sn] = supernode[p-1]
		}
	}
	for ci, cl := range clusters {
		for _, m := range cl.Members {
			ni := m + 1
			if ni == supernode[ci] {
				continue
			}
			parents[ni] = supernode[ci]
		}
	}
	t, err := overlay.NewTreeFromParents(parents)
	if err != nil {
		return err
	}
	s.tree = t
	return nil
}

// send wraps netmodel.Send with the message counters the figures need and
// returns the arrival time. The message is booked in the sender's cell: its
// network view draws the jitter/loss randomness and its counters take the
// tally, so per-cell ledgers partition the run's traffic exactly.
func (s *simulation) send(from, to int, sizeKB float64, class netmodel.Class) time.Duration {
	c := s.cell(from)
	arrival := c.net.Send(s.nodes[from].ep, s.nodes[to].ep, sizeKB, class, c.eng.Now())
	switch class {
	case netmodel.ClassUpdate:
		if to != 0 {
			c.updateMsgsToServers++
		}
		if from == 0 {
			c.updateMsgsFromProvider++
		}
	case netmodel.ClassLight:
		c.lightMsgs++
	}
	return arrival
}

// deliver sends a message and schedules onArrival at the arrival time, in
// the receiver's cell. A cross-cell arrival goes through the sharded
// engine's barrier exchange; netmodel guarantees it lands at least one
// propagation delay after the send, so it never violates the conservative
// window. When an active partition separates the endpoints, the message is
// dropped on the floor — it never enters the network, is not accounted, and
// the sender only learns about it through its own timeout.
func (s *simulation) deliver(from, to int, sizeKB float64, class netmodel.Class, onArrival func()) {
	c := s.cell(from)
	c.deliverAttempts++
	if !c.net.Reachable(s.nodes[from].ep, s.nodes[to].ep) {
		s.dropDelivery(from, "partition")
		return
	}
	c.deliverSends++
	arrival := s.send(from, to, sizeKB, class)
	if s.sharded() {
		// A lookahead violation is recorded per source cell and aborts Run
		// at the next barrier, so the error need not propagate from here.
		s.shEng.Send(s.cellOf[from], s.cellOf[to], arrival, onArrival) //nolint:errcheck
		return
	}
	s.at(to, arrival, onArrival)
}

// dropDelivery records a dropped delivery attempt under its cause in the
// sender's cell, keeping the delivery-conservation ledger balanced: a drop
// without a recorded cause is exactly the silent message loss the auditor
// exists to catch.
func (s *simulation) dropDelivery(from int, cause string) {
	c := s.cell(from)
	if c.deliverDrops == nil {
		c.deliverDrops = make(map[string]int)
	}
	c.deliverDrops[cause]++
}

// setVersion advances a node's content and records ground-truth catch-up
// delays for every update the node just caught.
func (s *simulation) setVersion(nd *node, v int) {
	if v <= nd.version {
		return
	}
	now := s.now(nd.idx)
	for id := nd.version + 1; id <= v && id < len(s.publishAt); id++ {
		if at := s.publishAt[id]; at > 0 && now >= at {
			nd.catchupSum += (now - at).Seconds()
			nd.catchupN++
			if s.aud != nil && nd.idx > 0 {
				s.aud.onDelay(nd.idx, now-at)
			}
			if s.cfg.OnCatchUp != nil && nd.idx > 0 {
				s.cfg.OnCatchUp(nd.idx-1, id, now-at)
			}
		}
	}
	nd.version = v
	nd.valid = true
	if nd.recovering && nd.idx > 0 && nd.version >= nd.syncTarget {
		// The crash-recovered node caught up to the content the provider
		// held when it came back: recovery complete.
		nd.recovering = false
		c := s.cell(nd.idx)
		c.recoveries++
		c.recoverySeconds = append(c.recoverySeconds, (now - nd.recoverAt).Seconds())
	}
}

// pushMethod reports whether nd receives pushed updates: everything under
// MethodPush, and supernodes under the hybrid infrastructure regardless of
// the cluster-internal method (Section 5.2 pushes to supernodes).
func (s *simulation) pushedTo(nd *node) bool {
	if s.cfg.Method == consistency.MethodPush {
		return true
	}
	return s.cfg.Infra == consistency.InfraHybrid && nd.isSupernode
}

// invalidatedTo reports whether nd receives invalidation notices on every
// update (plain Invalidation method; supernodes relay within clusters).
func (s *simulation) invalidatedTo() bool {
	return s.cfg.Method == consistency.MethodInvalidation
}

func (s *simulation) run() (*Result, error) {
	s.schedulePublications()
	if err := s.scheduleServerLoops(); err != nil {
		return nil, err
	}
	if err := s.um.schedule(); err != nil {
		return nil, err
	}
	s.scheduleFailures()
	s.scheduleFaults()
	if s.fed != nil && s.fed.brokerPeriod > 0 {
		// The meta-CDN broker is a periodic engine event: deterministic
		// timing, no randomness, serial-only like the rest of federation.
		if _, err := s.cells[0].eng.Every(s.fed.brokerPeriod, func(*sim.Engine) { s.fedBrokerTick() }); err != nil {
			return nil, fmt.Errorf("cdn: broker period: %w", err)
		}
	}
	if s.cfg.Audit != nil {
		// Sweeps observe global state, so they must never run concurrently
		// with a handler. Serial runs make them ordinary events of the one
		// engine; sharded runs piggyback on the window barrier, where every
		// cell is parked — which also keeps Result.Events identical with
		// auditing on or off.
		s.aud = newAuditor(s)
		if s.sharded() {
			s.shEng.SetBarrierHook(func(now time.Duration) error { return s.aud.barrier(now) })
		} else if _, err := s.cells[0].eng.Every(s.aud.cadence, func(*sim.Engine) { s.aud.sweep() }); err != nil {
			return nil, fmt.Errorf("cdn: audit cadence: %w", err)
		}
		s.scheduleAuditSelfTest()
	}
	if s.cfg.Ctx != nil || s.cfg.OnTick != nil {
		ctx := s.cfg.Ctx
		for ci, c := range s.cells {
			// Every cell checks cancellation; only cell 0 reports progress
			// (a sharded run would otherwise interleave reports from
			// concurrent worker goroutines).
			reportTick := ci == 0
			c.eng.SetTick(0, func(e *sim.Engine) error {
				if reportTick && s.cfg.OnTick != nil {
					s.cfg.OnTick(e.Now(), e.Processed())
				}
				if ctx != nil {
					select {
					case <-ctx.Done():
						return ctx.Err()
					default:
					}
				}
				return nil
			})
		}
	}
	var runErr error
	if s.sharded() {
		runErr = s.shEng.Run(s.horizon)
	} else {
		runErr = s.cells[0].eng.Run(s.horizon)
	}
	if s.fed != nil {
		// Close still-open degradation intervals at the drained clock so
		// degraded_seconds covers blackouts running into the horizon — and so
		// the auditor's final conservation sweep sees balanced enter/exit
		// ledgers.
		s.fedCloseDegradation()
	}
	if s.aud != nil {
		// One final sweep over the drained state; a violation found here
		// (or mid-run, which stopped the engine early) outranks any engine
		// error because it explains it. A sharded run first drains any
		// cell-local observations parked since the last window barrier.
		if s.sharded() {
			s.aud.barrier(s.horizon) //nolint:errcheck // a violation is recorded in s.aud.violation
		}
		s.aud.sweep()
		if v := s.aud.violation; v != nil {
			return nil, v
		}
	}
	if runErr != nil {
		return nil, fmt.Errorf("cdn: %w", runErr)
	}

	acc := s.cells[0].net.Accounting()
	for _, c := range s.cells[1:] {
		acc.Merge(c.net.Accounting())
	}
	events := s.cells[0].eng.Processed()
	if s.sharded() {
		events = s.shEng.Processed()
	}
	res := &Result{
		Accounting: acc,
		TreeDepth:  s.tree.MaxDepth(),
		Events:     events,
	}
	s.mergeCellTallies(res)
	if s.aud != nil {
		res.AuditChecks = s.aud.checks
	}
	finalVersion := len(s.publishAt) - 1
	for _, nd := range s.nodes[1:] {
		avg := 0.0
		if nd.catchupN > 0 {
			avg = nd.catchupSum / float64(nd.catchupN)
		}
		res.ServerAvgInconsistency = append(res.ServerAvgInconsistency, avg)
		if nd.isSupernode {
			res.Supernodes++
		}
		if nd.down {
			res.FailedServers++
			continue
		}
		res.LiveServers++
		if nd.version >= finalVersion {
			res.LiveServersAtFinalVersion++
		}
	}
	s.um.collect(res)
	return res, nil
}

// scheduleFailures crash-stops FailServers random servers at random times
// inside the configured failure window (the middle third by default).
func (s *simulation) scheduleFailures() {
	if s.cfg.FailServers <= 0 {
		return
	}
	n := len(s.nodes) - 1
	count := s.cfg.FailServers
	if count > n {
		count = n
	}
	// Distinct victims via partial Fisher-Yates over server indices.
	victims := make([]int, n)
	for i := range victims {
		victims[i] = i + 1
	}
	// Victim and time draws come from cell 0's stream (single-threaded
	// setup, so sharded draws are deterministic too); each crash event is
	// scheduled in the victim's own cell.
	rng := s.rng(0)
	for i := 0; i < count; i++ {
		j := i + rng.Intn(n-i)
		victims[i], victims[j] = victims[j], victims[i]
	}
	windowStart := time.Duration(s.cfg.FailWindowStart * float64(s.horizon))
	window := time.Duration(s.cfg.FailWindowFrac * float64(s.horizon))
	if window < 1 {
		window = 1
	}
	for _, v := range victims[:count] {
		v := v
		at := windowStart + time.Duration(rng.Int63n(int64(window)))
		s.at(v, at, func() { s.failServer(v) })
	}
}

// scheduleFaults arms the compiled fault schedule. Event server indices are
// 0-based server indices; node indices are one higher (node 0 is the
// provider).
func (s *simulation) scheduleFaults() {
	for _, e := range s.faultEvents {
		e := e
		switch e.Op {
		// Node-scoped faults execute in the affected node's cell.
		case fault.OpServerDown:
			s.at(e.Server+1, e.At, func() { s.failServer(e.Server + 1) })
		case fault.OpServerUp:
			s.at(e.Server+1, e.At, func() { s.recoverServer(e.Server + 1) })
		case fault.OpProviderDown:
			if s.fed != nil {
				s.at(0, e.At, func() { s.fedProviderDown(e.Provider) })
			} else {
				s.at(0, e.At, func() { s.providerDown = true })
			}
		case fault.OpProviderUp:
			if s.fed != nil {
				s.at(0, e.At, func() { s.fedProviderUp(e.Provider) })
			} else {
				s.at(0, e.At, func() { s.providerUp() })
			}
		// Network-scoped faults apply to every cell's network view at the
		// fault instant, so all senders see them (serial: the one cell).
		case fault.OpPartitionStart:
			s.eachNet(e.At, func(n *netmodel.Network) { n.SetPartitionGroup(e.Group, e.ISPs) })
		case fault.OpPartitionEnd:
			s.eachNet(e.At, func(n *netmodel.Network) { n.ClearPartitionGroup(e.Group) })
		case fault.OpOverloadStart:
			s.eachNet(e.At, func(n *netmodel.Network) { n.SetOverload(s.nodes[e.Server+1].ep.ID, e.Factor) })
		case fault.OpOverloadEnd:
			s.eachNet(e.At, func(n *netmodel.Network) { n.ClearOverload(s.nodes[e.Server+1].ep.ID) })
		}
	}
}

// failServer crash-stops a node and, when configured, repairs the multicast
// tree around it so its orphaned subtree keeps receiving updates.
func (s *simulation) failServer(v int) {
	nd := s.nodes[v]
	if nd.down {
		return
	}
	if s.aud != nil {
		defer s.aud.onTreeMutation(v, fmt.Sprintf("failServer(%d)", v))
	}
	nd.down = true
	nd.gen++
	s.cell(v).crashes++
	if s.auth != nil && s.cfg.Failover {
		// Health-check feedback into request routing: the authoritative
		// DNS stops handing out the dead server.
		s.auth.SetLive(v, false)
	}
	// A downed server must never be counted live again: leaving alive[v]
	// set would let a later repair adopt orphans under the dead node (and
	// TotalEdgeKm/Validate would still count it). tree.Remove clears the
	// flag itself on entry; every other path clears it here.
	//
	// Tree repair only applies to degree-bounded multicast trees; the
	// unicast star and hybrid stars have no relaying role to repair
	// (children of the star root are leaves).
	if !s.cfg.RepairTree || s.cfg.Infra != consistency.InfraMulticast {
		s.alive[v] = false
		return
	}
	if err := s.tree.Remove(v, s.locs, s.cfg.TreeDegree, s.alive); err != nil {
		// Repair is best-effort: an unrepairable orphan keeps its old
		// (dead) parent and simply stops receiving updates.
		s.alive[v] = false
		return
	}
}

// recoverServer brings a crash-recovered server back. Its volatile state is
// lost (content, validity, lease, in-flight bookkeeping); it re-joins the
// update infrastructure — under multicast repair via Tree.Reattach to the
// nearest live node — and re-syncs, counting as recovered once it holds the
// content the provider held at recovery time.
func (s *simulation) recoverServer(v int) {
	nd := s.nodes[v]
	if !nd.down {
		return
	}
	if s.aud != nil {
		defer s.aud.onTreeMutation(v, fmt.Sprintf("recoverServer(%d)", v))
	}
	nd.down = false
	nd.gen++
	nd.version = 0
	nd.valid = false
	nd.fetchInFlight = false
	nd.waiters = nil
	nd.fetchCallbacks = nil
	nd.pollStopped = false
	nd.watchdogArmed = false
	nd.leaseExpiry = 0
	nd.leaseRenewing = false
	if s.auth != nil && s.cfg.Failover {
		s.auth.SetLive(v, true)
	}
	if s.cfg.Infra == consistency.InfraMulticast && s.tree.Parent(v) == overlay.NoParent {
		// The node was detached from the tree — at crash time by the
		// RepairTree oracle, or later by a child's detection-driven removal
		// under Failover — so rejoin under the nearest live node with spare
		// degree. On the (rare) failure the node stays orphaned: it serves
		// its empty state but cannot poll anything.
		if err := s.tree.Reattach(v, s.locs, s.cfg.TreeDegree, s.alive); err != nil {
			s.restartServer(v)
			return
		}
	} else {
		s.alive[v] = true
	}
	nd.recovering = true
	// The provider's version at recovery time equals the newest published
	// snapshot (both advance in the same publication event), and the cell's
	// published copy tracks it locally — so the sync target needs no
	// cross-cell read.
	nd.syncTarget = s.cell(v).published
	nd.recoverAt = s.now(v)
	if nd.syncTarget == 0 {
		// Nothing was ever published: recovery is trivially complete.
		nd.recovering = false
		c := s.cell(v)
		c.recoveries++
		c.recoverySeconds = append(c.recoverySeconds, 0)
	}
	s.restartServer(v)
}

// restartServer boots a recovered node's protocol role from scratch, as a
// freshly provisioned cache would.
func (s *simulation) restartServer(i int) {
	nd := s.nodes[i]
	if s.cfg.Infra == consistency.InfraHybrid && nd.isSupernode {
		// Supernodes are push-fed; re-sync the content, then wait for
		// pushes to resume.
		s.resyncFetch(i)
		return
	}
	switch s.cfg.Method {
	case consistency.MethodPush, consistency.MethodInvalidation:
		s.resyncFetch(i)
	case consistency.MethodLease:
		s.renewLease(i, nil)
	case consistency.MethodRegime:
		if rc, err := consistency.NewRegimeController(consistency.RegimeConfig{}); err == nil {
			nd.rc = rc
		}
		nd.regime = consistency.RegimeTTL
		s.pollAttempt(i, 0)
		gen := nd.gen
		s.at(i, s.now(i)+s.cfg.ServerTTL, func() {
			if nd.down || nd.gen != gen {
				return
			}
			s.regimeEpoch(i)
		})
	case consistency.MethodSelfAdaptive:
		nd.auto = consistency.NewSelfAdaptive()
		s.pollAttempt(i, 0)
	case consistency.MethodAdaptiveTTL:
		if adapt, err := consistency.NewAdaptiveTTL(consistency.AdaptiveTTLConfig{
			MinTTL: s.cfg.UserTTL,
			MaxTTL: 4 * s.cfg.ServerTTL,
		}); err == nil {
			nd.adapt = adapt
		}
		s.pollAttempt(i, 0)
	default: // plain TTL (and broadcast's push-style star)
		s.pollAttempt(i, 0)
	}
}

// resyncFetch re-syncs a recovered push/invalidation-family node from its
// parent. Pushed updates only carry content published after the recovery,
// so the node must actively fetch what it missed; under Failover it keeps
// retrying every TTL until caught up.
func (s *simulation) resyncFetch(i int) {
	nd := s.nodes[i]
	gen := nd.gen
	s.triggerFetch(i, func() {
		if nd.down || nd.gen != gen || !nd.recovering || !s.cfg.Failover {
			return
		}
		s.at(i, s.now(i)+s.cfg.ServerTTL, func() {
			if nd.down || nd.gen != gen || !nd.recovering {
				return
			}
			s.resyncFetch(i)
		})
	})
}

// providerUp ends a provider outage, releasing any dissemination that was
// deferred while the origin was dark.
func (s *simulation) providerUp() {
	if !s.providerDown {
		return
	}
	s.providerDown = false
	if s.pendingDissem {
		s.pendingDissem = false
		s.disseminate()
	}
}

// schedulePublications sets the provider's version at each publication time
// and triggers method-specific dissemination. The publication schedule is
// static, so every non-provider cell advances its own published copy with a
// local marker event at the same instant — zero cross-cell traffic.
func (s *simulation) schedulePublications() {
	for _, u := range s.cfg.Updates {
		v := u.Snapshot
		at := s.publishAt[v]
		s.cells[0].eng.ScheduleAt(at, func(*sim.Engine) { //nolint:errcheck // at >= 0 by construction
			provider := s.nodes[0]
			s.setVersion(provider, v)
			s.cells[0].published = v
			if s.fed != nil {
				// Federated origins: each provider takes (and disseminates)
				// the snapshot after its own propagation delay; a down
				// provider defers dissemination until its recovery.
				now := s.now(0)
				for k := range s.fed.prov {
					k := k
					s.at(0, now+s.fed.prov[k].propagation, func() { s.fedAdvance(k, v) })
				}
				return
			}
			if s.providerDown {
				// Origin outage: the content exists (ground truth
				// advances) but cannot be disseminated until the
				// provider returns; updates aggregate into one deferred
				// dissemination.
				s.pendingDissem = true
				return
			}
			s.disseminate()
		})
		for _, c := range s.cells[1:] {
			c := c
			c.eng.ScheduleAtCall(at, func() { c.published = v }) //nolint:errcheck // at >= 0 by construction
		}
	}
}

// disseminate runs the configured method's reaction to the provider's
// current content.
func (s *simulation) disseminate() {
	provider := s.nodes[0]
	switch {
	case s.cfg.Infra == consistency.InfraBroadcast:
		s.broadcastUpdate()
	case s.cfg.Method == consistency.MethodLease:
		s.pushToLeaseholders()
	case s.cfg.Method == consistency.MethodRegime:
		s.regimePublish()
	case s.cfg.Method == consistency.MethodPush:
		s.pushToChildren(0)
	case s.cfg.Infra == consistency.InfraHybrid:
		// Push to supernode children; cluster-internal dissemination is
		// the configured method, driven by each supernode when its
		// content arrives.
		s.pushToSupernodeChildren(0)
		s.afterSourceUpdate(provider)
	case s.cfg.Method == consistency.MethodInvalidation:
		s.invalidateChildren(0)
	case s.cfg.Method == consistency.MethodSelfAdaptive:
		s.notifySubscribers(provider)
	}
}

// afterSourceUpdate handles method-specific follow-ups when an update source
// (provider in unicast, supernode in hybrid) takes a new version.
func (s *simulation) afterSourceUpdate(nd *node) {
	switch s.cfg.Method {
	case consistency.MethodInvalidation:
		s.invalidateChildren(nd.idx)
	case consistency.MethodSelfAdaptive:
		s.notifySubscribers(nd)
	}
}

// pushToChildren forwards the sender's current version to all tree children
// as update messages; receivers forward recursively (multicast) or are
// leaves (unicast).
func (s *simulation) pushToChildren(from int) {
	v := s.nodes[from].version
	for _, c := range s.tree.Children(from) {
		child := c
		s.deliver(from, child, s.cfg.UpdateSizeKB, netmodel.ClassUpdate, func() {
			nd := s.nodes[child]
			if nd.down || v <= nd.version {
				return
			}
			s.setVersion(nd, v)
			s.pushToChildren(child)
		})
	}
}

// pushToSupernodeChildren pushes only to children that are supernodes (the
// hybrid provider/supernode relay path).
func (s *simulation) pushToSupernodeChildren(from int) {
	v := s.nodes[from].version
	for _, c := range s.tree.Children(from) {
		child := c
		if !s.nodes[child].isSupernode {
			continue
		}
		s.deliver(from, child, s.cfg.UpdateSizeKB, netmodel.ClassUpdate, func() {
			nd := s.nodes[child]
			if nd.down || v <= nd.version {
				return
			}
			s.setVersion(nd, v)
			s.pushToSupernodeChildren(child)
			// The supernode is the cluster's update source: run the
			// cluster-internal method's reaction.
			s.afterSourceUpdate(nd)
		})
	}
}

// invalidateChildren sends invalidation notices down the tree (light
// messages); an invalid node answers its children's fetches by first
// fetching from its own parent.
func (s *simulation) invalidateChildren(from int) {
	for _, c := range s.tree.Children(from) {
		child := c
		if s.cfg.Infra == consistency.InfraHybrid && s.nodes[child].isSupernode {
			continue // supernodes receive pushed content instead
		}
		s.deliver(from, child, s.cfg.LightSizeKB, netmodel.ClassLight, func() {
			nd := s.nodes[child]
			if nd.down {
				return
			}
			nd.valid = false
			s.invalidateChildren(child)
		})
	}
}

// notifySubscribers sends one aggregated invalidation notice to each
// self-adaptive subscriber that has not been notified since its switch.
// Iteration is in sorted order: send order feeds the uplink queue, so map
// order would leak nondeterminism into arrival times.
func (s *simulation) notifySubscribers(src *node) {
	for _, sub := range sortedKeys(src.subscribers) {
		if src.subscribers[sub] {
			continue
		}
		src.subscribers[sub] = true
		child := sub
		s.deliver(src.idx, child, s.cfg.LightSizeKB, netmodel.ClassLight, func() {
			nd := s.nodes[child]
			if nd.down {
				return
			}
			nd.valid = false
			if nd.auto != nil {
				nd.auto.OnInvalidation()
			}
		})
	}
}

// packNodeGen packs a node index and its generation into one scheduling
// argument for the closure-free handlers below.
func packNodeGen(i, gen int) int64 { return int64(i)<<32 | int64(uint32(gen)) }

func unpackNodeGen(a int64) (i, gen int) { return int(a >> 32), int(uint32(a)) }

// nearestLive returns the node index of the nearest live server to loc, or
// -1 when no candidate is live. It backs user/cohort failover re-homing.
// Sharded runs restrict the search to near's cell — the regional catchment
// an anycast CDN fails over inside — both because a user's lifetime must
// stay in one cell and because another cell's down flags cannot be read
// mid-window. The cell filter comes before the down read for that reason.
func (s *simulation) nearestLive(near int, loc geo.Point) int {
	best, bestD := -1, 0.0
	for i := 1; i < len(s.nodes); i++ {
		if s.sharded() && s.cellOf[i] != s.cellOf[near] {
			continue
		}
		if s.nodes[i].down {
			continue
		}
		d := geo.DistanceKm(loc, s.locs[i])
		if best == -1 || d < bestD {
			best, bestD = i, d
		}
	}
	return best
}

// pollResumeEvent resumes a node's TTL poll loop unless the node crashed or
// recovered (generation change) since the resume was armed; arg packs the
// node index and the generation at arming time.
func pollResumeEvent(_ *sim.Engine, recv any, arg int64) {
	s := recv.(*simulation)
	i, gen := unpackNodeGen(arg)
	nd := s.nodes[i]
	if nd.down || nd.gen != gen {
		return
	}
	s.pollAttempt(i, 0)
}

// sortedKeys returns a map's keys in ascending order, for deterministic
// send sequences.
func sortedKeys(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}
