package cdn

import (
	"errors"
	"testing"
	"time"

	"cdnconsistency/internal/audit"
	"cdnconsistency/internal/consistency"
)

// cohortAuditConfig is auditTestConfig over the cohort user model: a small
// heavy-tailed population, batched visit accounting on, auditor at maximum
// cadence.
func cohortAuditConfig(t *testing.T) Config {
	t.Helper()
	cfg := auditTestConfig(t, consistency.MethodTTL, consistency.InfraUnicast)
	cfg.Topology.Servers = 12
	cfg.Population = equivPopulation(t, 12, 110, 3)
	cfg.UserModel = UserModelCohort
	cfg.AccountVisits = true
	return cfg
}

// The auditor must catch cohort bookkeeping corruption: population counts are
// conserved across churn and re-homing, and the batched visit traffic must
// stay in lockstep with the ledger. Each case corrupts one piece of state
// behind the simulation's back mid-run and expects the named property to fire.
func TestAuditorCatchesCohortCorruption(t *testing.T) {
	cases := []struct {
		name     string
		corrupt  func(s *simulation)
		property string
	}{
		{
			name:     "cohort count inflated",
			corrupt:  func(s *simulation) { s.um.(*cohortUsers).cohorts[0].count++ },
			property: "cohort-conservation",
		},
		{
			name:     "cohort count drained",
			corrupt:  func(s *simulation) { s.um.(*cohortUsers).cohorts[2].count = 0 },
			property: "cohort-conservation",
		},
		{
			name:     "cohort homed at the provider",
			corrupt:  func(s *simulation) { s.um.(*cohortUsers).cohorts[1].home = 0 },
			property: "cohort-conservation",
		},
		{
			name:     "unledgered visit",
			corrupt:  func(s *simulation) { s.cells[0].visitsAccounted++ },
			property: "visit-traffic-conservation",
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			cfg, err := cohortAuditConfig(t).withDefaults()
			if err != nil {
				t.Fatal(err)
			}
			s, err := newSimulation(cfg)
			if err != nil {
				t.Fatal(err)
			}
			s.at(0, 4*time.Minute, func() { tc.corrupt(s) })
			_, err = s.run()
			var v *audit.Violation
			if !errors.As(err, &v) {
				t.Fatalf("corrupted run returned %v, want an audit violation", err)
			}
			if v.Property != tc.property {
				t.Fatalf("violation property %q, want %q (detail: %s)", v.Property, tc.property, v.Detail)
			}
		})
	}
}

// An uncorrupted cohort run under the same maximum-cadence auditor must be
// certified clean — the conservation invariants hold across the whole run.
func TestAuditCleanCohortModel(t *testing.T) {
	res, err := Run(cohortAuditConfig(t))
	if err != nil {
		t.Fatalf("audited cohort run failed: %v", err)
	}
	if res.AuditChecks == 0 {
		t.Fatal("auditor never ran")
	}
}

// The cohort visit body — the per-period steady-state work that replaces
// count individual visits — must not allocate: a million-user sweep runs
// millions of these, and the fixed-memory claim depends on the visit path
// staying off the heap. The reschedule is measured separately by the engine
// benchmarks (PR 4); here the visit body is measured directly.
func TestCohortVisitSteadyStateZeroAlloc(t *testing.T) {
	cfg, err := cohortAuditConfig(t).withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	cfg.Audit = nil
	s, err := newSimulation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.um.schedule(); err != nil {
		t.Fatal(err)
	}
	m := s.um.(*cohortUsers)
	c := m.cohorts[0]
	m.visit(c) // warm up: interns the endpoint, sizes the ledger
	if avg := testing.AllocsPerRun(1000, func() { m.visit(c) }); avg != 0 {
		t.Fatalf("cohort visit allocated %.2f times per run, want 0", avg)
	}
}
