package cdn

import (
	"fmt"
	"time"

	"cdnconsistency/internal/consistency"
	"cdnconsistency/internal/netmodel"
	"cdnconsistency/internal/overlay"
)

// pollMaxAttempts is how many consecutive poll timeouts a server tolerates
// before (under Failover) concluding its parent is dead and failing over.
const pollMaxAttempts = 3

// scheduleServerLoops starts the poll loops of every polling node. Under
// Push and Invalidation nothing polls; under the hybrid infrastructure
// supernodes receive pushes and never poll.
func (s *simulation) scheduleServerLoops() error {
	switch s.cfg.Method {
	case consistency.MethodPush, consistency.MethodInvalidation:
		return nil
	case consistency.MethodLease:
		s.scheduleLeaseLoops()
		return nil
	case consistency.MethodRegime:
		return s.scheduleRegimeLoops()
	}
	for _, nd := range s.nodes[1:] {
		if s.cfg.Infra == consistency.InfraHybrid && nd.isSupernode {
			continue
		}
		switch s.cfg.Method {
		case consistency.MethodSelfAdaptive:
			nd.auto = consistency.NewSelfAdaptive()
		case consistency.MethodAdaptiveTTL:
			adapt, err := consistency.NewAdaptiveTTL(consistency.AdaptiveTTLConfig{
				MinTTL: s.cfg.UserTTL,
				MaxTTL: 4 * s.cfg.ServerTTL,
			})
			if err != nil {
				return fmt.Errorf("cdn: adaptive TTL for server %d: %w", nd.idx, err)
			}
			nd.adapt = adapt
		}
		// Stagger first polls uniformly over one TTL, as TTL caches do.
		i := nd.idx
		offset := time.Duration(s.rng(i).Int63n(int64(s.cfg.ServerTTL)))
		s.at(i, offset, func() { s.pollParent(i) })
	}
	return nil
}

// pollParent starts one TTL-family poll cycle: a light request up the tree,
// an update-class response down carrying the parent's current content. A
// dead, partitioned or dark parent never answers; the poller times out and
// retries with exponential backoff, and under Failover eventually reparents
// away from a dead relay.
func (s *simulation) pollParent(i int) { s.pollAttempt(i, 0) }

func (s *simulation) pollAttempt(i, attempt int) {
	nd := s.nodes[i]
	if nd.down {
		return // a crashed server's poll loop ends
	}
	gen := nd.gen
	p := s.tree.Parent(i)
	if p == overlay.NoParent {
		return // orphaned by a failed repair: nothing to poll
	}
	answered := false
	if p == 0 && s.fed != nil {
		// Federated origin poll: route to the home provider (or a peering
		// hand-off), answer with that provider's version from its endpoint.
		s.fedOriginExchange(i, s.cfg.UpdateSizeKB, netmodel.ClassUpdate, func(v, _ int) {
			if answered || nd.down || nd.gen != gen {
				return
			}
			answered = true
			s.fedExitDegraded(i)
			s.onPollResponse(i, p, v)
		})
	} else {
		s.deliver(i, p, s.cfg.LightSizeKB, netmodel.ClassLight, func() {
			if s.nodes[p].down || (p == 0 && s.providerDown) {
				return // no answer; the poller's timeout takes over
			}
			v := s.nodes[p].version
			s.deliver(p, i, s.cfg.UpdateSizeKB, netmodel.ClassUpdate, func() {
				if answered || nd.down || nd.gen != gen {
					return
				}
				answered = true
				s.onPollResponse(i, p, v)
			})
		})
	}
	s.at(i, s.now(i)+s.cfg.ServerTTL, func() {
		if answered || nd.down || nd.gen != gen {
			return
		}
		answered = true
		s.pollRetry(i, p, attempt+1)
	})
}

// pollRetry handles a timed-out poll against parent p: bounded retries with
// exponential backoff and jitter; once the retry budget is spent, a Failover
// node whose relay parent is dead moves itself (and the whole orphan group
// under that relay) to the nearest live node and starts a fresh cycle.
func (s *simulation) pollRetry(i, p, attempt int) {
	nd := s.nodes[i]
	if s.cfg.Failover && attempt >= pollMaxAttempts {
		if p == 0 && s.fed != nil {
			// The origin stopped answering through a whole retry cycle:
			// durably re-home to the nearest alive provider (the anycast
			// analogue of reparenting off a dead relay). During a full
			// blackout there is nowhere to go — serve-stale rides it out.
			if h := s.fed.home[i]; s.fed.prov[h].down {
				if k := s.fed.nearestAlive(s, i); k >= 0 && k != h {
					s.fedRehome(i, k)
				}
			}
		} else {
			pn := s.nodes[p]
			if pn.down && p != 0 && s.cfg.Infra == consistency.InfraMulticast && s.tree.Parent(i) == p {
				if err := s.tree.Remove(p, s.locs, s.cfg.TreeDegree, s.alive); err == nil {
					s.cell(i).serverReparents++
				}
				if s.aud != nil {
					s.aud.onTreeMutation(i, fmt.Sprintf("pollRetry reparent of %d off dead relay %d", i, p))
				}
			}
		}
		attempt = 0 // fresh cycle against the (possibly new) parent
	}
	backoff := s.pollBackoff(i, attempt)
	gen := nd.gen
	s.at(i, s.now(i)+backoff, func() {
		if nd.down || nd.gen != gen {
			return
		}
		s.pollAttempt(i, attempt)
	})
}

// pollBackoff maps the retry attempt to its wait: one TTL, two, then capped
// at four, plus jitter to desynchronise the retry storm when a fault clears.
// Jitter is drawn only on the retry path, so healthy runs consume no extra
// randomness.
func (s *simulation) pollBackoff(i, attempt int) time.Duration {
	d := s.cfg.ServerTTL
	switch {
	case attempt >= 3:
		d = 4 * s.cfg.ServerTTL
	case attempt == 2:
		d = 2 * s.cfg.ServerTTL
	}
	return d + time.Duration(s.rng(i).Int63n(int64(s.cfg.ServerTTL)/4+1))
}

// pollAfter resumes a node's poll loop after d, unless the node crashed or
// recovered (generation change) in the meantime — recovery starts its own
// fresh loop. The resume is scheduled closure-free: together with the user
// visit loop it dominates event volume under TTL regimes, so one allocation
// per cycle here is one allocation per simulated poll.
func (s *simulation) pollAfter(i int, d time.Duration) {
	s.cell(i).eng.ScheduleAfterFunc(d, pollResumeEvent, s, packNodeGen(i, s.nodes[i].gen))
}

// armWatchdog starts the subscription watchdog on a node whose poll loop is
// paused because it relies on notifications from its feed (push/invalidation
// regime, self-adaptive subscription). A registration dropped by a partition,
// a dark provider, or a dead supernode would otherwise leave the node serving
// stale content silently, believing itself subscribed. Every two TTLs the
// watchdog heartbeats the feed: no answer within one TTL, or an answer
// revealing newer content the node was never told about, reverts it to TTL
// polling. Failover only.
func (s *simulation) armWatchdog(i int) {
	if !s.cfg.Failover {
		return
	}
	nd := s.nodes[i]
	if nd.watchdogArmed {
		return
	}
	nd.watchdogArmed = true
	gen := nd.gen
	var tick func()
	tick = func() {
		if nd.down || nd.gen != gen || !nd.pollStopped {
			nd.watchdogArmed = false
			return
		}
		p := s.tree.Parent(i)
		if p == overlay.NoParent {
			nd.watchdogArmed = false
			return
		}
		answered := false
		heartbeat := func(v int) {
			if answered || nd.down || nd.gen != gen {
				return
			}
			answered = true
			if !nd.pollStopped {
				nd.watchdogArmed = false
				return
			}
			if v > nd.version && nd.valid {
				// The feed moved on without notifying us: the
				// registration was lost somewhere en route.
				s.ttlFallback(i)
				return
			}
			s.at(i, s.now(i)+2*s.cfg.ServerTTL, tick)
		}
		if p == 0 && s.fed != nil {
			s.fedOriginExchange(i, s.cfg.LightSizeKB, netmodel.ClassLight, func(v, _ int) {
				if answered || nd.down || nd.gen != gen {
					return
				}
				s.fedExitDegraded(i)
				heartbeat(v)
			})
		} else {
			s.deliver(i, p, s.cfg.LightSizeKB, netmodel.ClassLight, func() {
				if s.nodes[p].down || (p == 0 && s.providerDown) {
					return // no answer; the heartbeat timeout concludes
				}
				v := s.nodes[p].version
				s.deliver(p, i, s.cfg.LightSizeKB, netmodel.ClassLight, func() { heartbeat(v) })
			})
		}
		s.at(i, s.now(i)+s.cfg.ServerTTL, func() {
			if answered || nd.down || nd.gen != gen {
				return
			}
			answered = true
			if !nd.pollStopped {
				nd.watchdogArmed = false
				return
			}
			s.ttlFallback(i)
		})
	}
	s.at(i, s.now(i)+2*s.cfg.ServerTTL, tick)
}

// ttlFallback reverts a notification-dependent node to TTL polling after its
// watchdog concluded the feed is dead, dark, or no longer aware of it.
func (s *simulation) ttlFallback(i int) {
	nd := s.nodes[i]
	nd.pollStopped = false
	nd.watchdogArmed = false
	s.cell(i).ttlFallbacks++
	if nd.auto != nil {
		nd.auto = consistency.NewSelfAdaptive()
	}
	if s.cfg.Method == consistency.MethodRegime {
		nd.regime = consistency.RegimeTTL
	}
	s.pollAttempt(i, 0)
}

func (s *simulation) onPollResponse(i, p, v int) {
	nd := s.nodes[i]
	if nd.down {
		return
	}
	hadUpdate := v > nd.version
	s.setVersion(nd, v)
	nd.valid = true

	switch s.cfg.Method {
	case consistency.MethodSelfAdaptive:
		notify, err := nd.auto.OnPollResult(hadUpdate)
		if err != nil {
			// A poll response raced a mode switch; drop it.
			return
		}
		if notify {
			// Switch to Invalidation (Algorithm 1 line 8): register
			// with the parent and pause the poll loop. The child's version
			// rides the registration message (a sharded run cannot read it
			// at the parent); a serial run reads it at arrival, exactly as
			// it always did.
			nd.pollStopped = true
			s.armWatchdog(i)
			childV := nd.version
			if p == 0 && s.fed != nil {
				// Register with the logical origin via the current home (or
				// peering) provider; a provider dark at arrival loses the
				// registration, and the watchdog recovers the node.
				k := s.fedRoute(i)
				s.fedDeliverUp(i, k, s.cfg.LightSizeKB, netmodel.ClassLight, func() {
					if s.fed.prov[k].down {
						return
					}
					s.subscribe(p, i, s.nodes[i].version)
				})
				return
			}
			s.deliver(i, p, s.cfg.LightSizeKB, netmodel.ClassLight, func() {
				if s.nodes[p].down || (p == 0 && s.providerDown) {
					return // subscription lost; the watchdog (or the
					// next visit poll) recovers the node
				}
				v := childV
				if !s.sharded() {
					v = s.nodes[i].version
				}
				s.subscribe(p, i, v)
			})
			return
		}
		s.pollAfter(i, s.fedTTL(i))
	case consistency.MethodAdaptiveTTL:
		now := s.now(i)
		if hadUpdate {
			nd.adapt.ObserveUpdate(now)
		} else {
			nd.adapt.ObserveMiss()
		}
		s.pollAfter(i, nd.adapt.NextTTL())
	case consistency.MethodRegime:
		if hadUpdate && nd.rc != nil {
			nd.rc.ObserveUpdate(s.now(i))
		}
		// Keep polling only while still in the TTL regime.
		if nd.regime == consistency.RegimeTTL && !nd.pollStopped {
			s.pollAfter(i, s.cfg.ServerTTL)
		}
	default: // plain TTL
		s.pollAfter(i, s.fedTTL(i))
	}
}

// subscribe registers child as an Invalidation-mode subscriber at a source
// node (provider or supernode). childV is the child's version as known to
// the registration (read at arrival in serial runs, carried on the message
// in sharded ones).
func (s *simulation) subscribe(src, child, childV int) {
	nd := s.nodes[src]
	if nd.subscribers == nil {
		nd.subscribers = make(map[int]bool)
	}
	// If the source already has newer content than the child could have
	// seen, notify immediately rather than waiting for the next publish —
	// handles an update racing the subscription.
	nd.subscribers[child] = false
	if src == 0 && s.fed != nil {
		// The relevant "already newer" comparison is against the child's
		// home provider, whose servable version trails the ground truth by
		// its propagation delay.
		if k := s.fed.home[child]; !s.fed.prov[k].down && s.fed.prov[k].version > childV {
			s.fedNotifySubscribers(k)
		}
		return
	}
	if nd.version > childV {
		s.notifySubscribers(nd)
	}
}

// triggerFetch starts (or joins) a fetch of fresh content from i's parent,
// used by the Invalidation method. cb fires when the content arrives.
func (s *simulation) triggerFetch(i int, cb func()) {
	nd := s.nodes[i]
	if cb != nil {
		nd.fetchCallbacks = append(nd.fetchCallbacks, cb)
	}
	if nd.fetchInFlight {
		return
	}
	nd.fetchInFlight = true
	p := s.tree.Parent(i)
	if p == overlay.NoParent {
		// Orphaned by a failed repair: no upstream; serve what we hold.
		s.failFetch(i)
		return
	}
	nd.fetchSeq++
	seq, gen := nd.fetchSeq, nd.gen
	if p == 0 && s.fed != nil {
		// Federated origin fetch: the answering provider serves its own
		// (propagation-delayed) version; an unanswered fetch times out below
		// and serves the stale local content.
		s.fedOriginExchange(i, s.cfg.UpdateSizeKB, netmodel.ClassUpdate, func(v, _ int) {
			if nd.down || nd.gen != gen || nd.fetchSeq != seq || !nd.fetchInFlight {
				return
			}
			s.fedExitDegraded(i)
			s.completeFetch(i, v)
		})
	} else {
		s.deliver(i, p, s.cfg.LightSizeKB, netmodel.ClassLight, func() { s.serveFetch(p, i) })
	}
	s.at(i, s.now(i)+s.cfg.ServerTTL, func() {
		if nd.down || nd.gen != gen || nd.fetchSeq != seq || !nd.fetchInFlight {
			return
		}
		// The fetch went dark (partitioned link or provider outage):
		// serve the stale local content to whoever is waiting.
		s.failFetch(i)
	})
}

// serveFetch answers child's fetch at node p. An invalid intermediate node
// first refreshes itself from its own parent (chained fetch along the
// multicast tree). A dead parent never answers: the child's fetch fails and
// its callbacks observe the stale content it still holds.
func (s *simulation) serveFetch(p, child int) {
	pn := s.nodes[p]
	if pn.down {
		s.failFetch(child)
		return
	}
	if p == 0 && s.providerDown {
		return // origin outage: no answer; the child's fetch timeout
		// serves its stale content
	}
	if p == 0 || pn.valid {
		if p == 0 && s.cfg.Method == consistency.MethodRegime {
			// Re-arm the aggregated invalidation for this subscriber.
			if _, ok := pn.subscribers[child]; ok {
				pn.subscribers[child] = false
			}
		}
		v := pn.version
		s.deliver(p, child, s.cfg.UpdateSizeKB, netmodel.ClassUpdate, func() { s.completeFetch(child, v) })
		return
	}
	pn.waiters = append(pn.waiters, child)
	s.triggerFetch(p, nil)
}

func (s *simulation) completeFetch(i, v int) {
	nd := s.nodes[i]
	nd.fetchInFlight = false
	if nd.down {
		return
	}
	s.setVersion(nd, v)
	nd.valid = true
	waiters := nd.waiters
	nd.waiters = nil
	for _, c := range waiters {
		s.serveFetch(i, c)
	}
	cbs := nd.fetchCallbacks
	nd.fetchCallbacks = nil
	for _, cb := range cbs {
		cb()
	}
}

// failFetch aborts a fetch whose upstream died: pending callbacks fire
// against the stale local content, and waiting children fail in turn.
func (s *simulation) failFetch(i int) {
	nd := s.nodes[i]
	nd.fetchInFlight = false
	waiters := nd.waiters
	nd.waiters = nil
	for _, c := range waiters {
		s.failFetch(c)
	}
	cbs := nd.fetchCallbacks
	nd.fetchCallbacks = nil
	for _, cb := range cbs {
		cb()
	}
}

// selfAdaptiveVisitPoll is the Algorithm 1 lines 10-13 path: the first visit
// after an invalidation polls the parent, notifies the switch back to TTL,
// and resumes the poll loop. onDone fires when the fresh content is in.
func (s *simulation) selfAdaptiveVisitPoll(i int, onDone func()) {
	nd := s.nodes[i]
	p := s.tree.Parent(i)
	gen := nd.gen
	answered := false
	// The automaton already switched back to TTL mode; whatever happens to
	// this poll, the loop must resume and the visitor must be served (with
	// stale content if the source is unreachable).
	resume := func() {
		if nd.pollStopped {
			nd.pollStopped = false
			s.pollAfter(i, s.fedTTL(i))
		}
		if onDone != nil {
			onDone()
		}
	}
	if p == overlay.NoParent {
		resume()
		return
	}
	if p == 0 && s.fed != nil {
		s.fedOriginExchange(i, s.cfg.UpdateSizeKB, netmodel.ClassUpdate, func(v, k int) {
			if answered || nd.down || nd.gen != gen {
				return
			}
			answered = true
			s.fedExitDegraded(i)
			s.setVersion(nd, v)
			nd.valid = true
			// Notify the switch back (Algorithm 1 line 12) via the provider
			// that answered; the registry lives on the logical origin.
			s.fedDeliverUp(i, k, s.cfg.LightSizeKB, netmodel.ClassLight, func() { delete(s.nodes[p].subscribers, i) })
			resume()
		})
		s.at(i, s.now(i)+s.cfg.ServerTTL, func() {
			if answered || nd.down || nd.gen != gen {
				return
			}
			// Blackout or in-flight failure: serve stale, resume.
			answered = true
			resume()
		})
		return
	}
	s.deliver(i, p, s.cfg.LightSizeKB, netmodel.ClassLight, func() {
		// This closure runs at the parent. The serial fast path may read the
		// requester's abort state directly; a sharded run must not (another
		// cell's state mid-window) and relies on the response-side and
		// timeout guards at i instead.
		if !s.sharded() && (answered || nd.down || nd.gen != gen) {
			return
		}
		if s.nodes[p].down || (p == 0 && s.providerDown) {
			if s.sharded() {
				// No answer crosses back; the timeout at i serves the
				// stale content and resumes the loop.
				return
			}
			// The source died or went dark: serve the stale content and
			// resume the poll loop.
			answered = true
			resume()
			return
		}
		v := s.nodes[p].version
		s.deliver(p, i, s.cfg.UpdateSizeKB, netmodel.ClassUpdate, func() {
			if answered || nd.down || nd.gen != gen {
				return
			}
			answered = true
			s.setVersion(nd, v)
			nd.valid = true
			// Notify the switch back (Algorithm 1 line 12).
			s.deliver(i, p, s.cfg.LightSizeKB, netmodel.ClassLight, func() { delete(s.nodes[p].subscribers, i) })
			resume()
		})
	})
	s.at(i, s.now(i)+s.cfg.ServerTTL, func() {
		if answered || nd.down || nd.gen != gen {
			return
		}
		// Request or response lost to a partition: serve stale, resume.
		answered = true
		resume()
	})
}
