package cdn

import (
	"time"

	"cdnconsistency/internal/consistency"
	"cdnconsistency/internal/netmodel"
)

// scheduleServerLoops starts the poll loops of every polling node. Under
// Push and Invalidation nothing polls; under the hybrid infrastructure
// supernodes receive pushes and never poll.
func (s *simulation) scheduleServerLoops() {
	switch s.cfg.Method {
	case consistency.MethodPush, consistency.MethodInvalidation:
		return
	case consistency.MethodLease:
		s.scheduleLeaseLoops()
		return
	case consistency.MethodRegime:
		s.scheduleRegimeLoops()
		return
	}
	for _, nd := range s.nodes[1:] {
		if s.cfg.Infra == consistency.InfraHybrid && nd.isSupernode {
			continue
		}
		switch s.cfg.Method {
		case consistency.MethodSelfAdaptive:
			nd.auto = consistency.NewSelfAdaptive()
		case consistency.MethodAdaptiveTTL:
			adapt, err := consistency.NewAdaptiveTTL(consistency.AdaptiveTTLConfig{
				MinTTL: s.cfg.UserTTL,
				MaxTTL: 4 * s.cfg.ServerTTL,
			})
			if err == nil {
				nd.adapt = adapt
			}
		}
		// Stagger first polls uniformly over one TTL, as TTL caches do.
		offset := time.Duration(s.eng.Rand().Int63n(int64(s.cfg.ServerTTL)))
		i := nd.idx
		s.at(offset, func() { s.pollParent(i) })
	}
}

// pollParent performs one TTL-family poll: a light request up the tree, an
// update-class response down carrying the parent's current content. A dead
// parent never answers; the poller times out and retries one TTL later.
func (s *simulation) pollParent(i int) {
	if s.nodes[i].down {
		return // a crashed server's poll loop ends
	}
	p := s.tree.Parent(i)
	reqArrival := s.send(i, p, s.cfg.LightSizeKB, netmodel.ClassLight)
	s.at(reqArrival, func() {
		if s.nodes[p].down {
			// Timeout path: retry on the next TTL boundary.
			s.at(s.eng.Now()+s.cfg.ServerTTL, func() { s.pollParent(i) })
			return
		}
		v := s.nodes[p].version
		respArrival := s.send(p, i, s.cfg.UpdateSizeKB, netmodel.ClassUpdate)
		s.at(respArrival, func() { s.onPollResponse(i, p, v) })
	})
}

func (s *simulation) onPollResponse(i, p, v int) {
	nd := s.nodes[i]
	if nd.down {
		return
	}
	hadUpdate := v > nd.version
	s.setVersion(nd, v)
	nd.valid = true

	switch s.cfg.Method {
	case consistency.MethodSelfAdaptive:
		notify, err := nd.auto.OnPollResult(hadUpdate)
		if err != nil {
			// A poll response raced a mode switch; drop it.
			return
		}
		if notify {
			// Switch to Invalidation (Algorithm 1 line 8): register
			// with the parent and pause the poll loop.
			nd.pollStopped = true
			arr := s.send(i, p, s.cfg.LightSizeKB, netmodel.ClassLight)
			s.at(arr, func() { s.subscribe(p, i) })
			return
		}
		s.at(s.eng.Now()+s.cfg.ServerTTL, func() { s.pollParent(i) })
	case consistency.MethodAdaptiveTTL:
		now := s.eng.Now()
		if hadUpdate {
			nd.adapt.ObserveUpdate(now)
		} else {
			nd.adapt.ObserveMiss()
		}
		s.at(now+nd.adapt.NextTTL(), func() { s.pollParent(i) })
	case consistency.MethodRegime:
		if hadUpdate && nd.rc != nil {
			nd.rc.ObserveUpdate(s.eng.Now())
		}
		// Keep polling only while still in the TTL regime.
		if nd.regime == consistency.RegimeTTL && !nd.pollStopped {
			s.at(s.eng.Now()+s.cfg.ServerTTL, func() { s.pollParent(i) })
		}
	default: // plain TTL
		s.at(s.eng.Now()+s.cfg.ServerTTL, func() { s.pollParent(i) })
	}
}

// subscribe registers child as an Invalidation-mode subscriber at a source
// node (provider or supernode).
func (s *simulation) subscribe(src, child int) {
	nd := s.nodes[src]
	if nd.subscribers == nil {
		nd.subscribers = make(map[int]bool)
	}
	// If the source already has newer content than the child could have
	// seen, notify immediately rather than waiting for the next publish —
	// handles an update racing the subscription.
	nd.subscribers[child] = false
	if nd.version > s.nodes[child].version {
		s.notifySubscribers(nd)
	}
}

// triggerFetch starts (or joins) a fetch of fresh content from i's parent,
// used by the Invalidation method. cb fires when the content arrives.
func (s *simulation) triggerFetch(i int, cb func()) {
	nd := s.nodes[i]
	if cb != nil {
		nd.fetchCallbacks = append(nd.fetchCallbacks, cb)
	}
	if nd.fetchInFlight {
		return
	}
	nd.fetchInFlight = true
	p := s.tree.Parent(i)
	arr := s.send(i, p, s.cfg.LightSizeKB, netmodel.ClassLight)
	s.at(arr, func() { s.serveFetch(p, i) })
}

// serveFetch answers child's fetch at node p. An invalid intermediate node
// first refreshes itself from its own parent (chained fetch along the
// multicast tree). A dead parent never answers: the child's fetch fails and
// its callbacks observe the stale content it still holds.
func (s *simulation) serveFetch(p, child int) {
	pn := s.nodes[p]
	if pn.down {
		s.failFetch(child)
		return
	}
	if p == 0 || pn.valid {
		if p == 0 && s.cfg.Method == consistency.MethodRegime {
			// Re-arm the aggregated invalidation for this subscriber.
			if _, ok := pn.subscribers[child]; ok {
				pn.subscribers[child] = false
			}
		}
		v := pn.version
		arr := s.send(p, child, s.cfg.UpdateSizeKB, netmodel.ClassUpdate)
		s.at(arr, func() { s.completeFetch(child, v) })
		return
	}
	pn.waiters = append(pn.waiters, child)
	s.triggerFetch(p, nil)
}

func (s *simulation) completeFetch(i, v int) {
	nd := s.nodes[i]
	nd.fetchInFlight = false
	if nd.down {
		return
	}
	s.setVersion(nd, v)
	nd.valid = true
	waiters := nd.waiters
	nd.waiters = nil
	for _, c := range waiters {
		s.serveFetch(i, c)
	}
	cbs := nd.fetchCallbacks
	nd.fetchCallbacks = nil
	for _, cb := range cbs {
		cb()
	}
}

// failFetch aborts a fetch whose upstream died: pending callbacks fire
// against the stale local content, and waiting children fail in turn.
func (s *simulation) failFetch(i int) {
	nd := s.nodes[i]
	nd.fetchInFlight = false
	waiters := nd.waiters
	nd.waiters = nil
	for _, c := range waiters {
		s.failFetch(c)
	}
	cbs := nd.fetchCallbacks
	nd.fetchCallbacks = nil
	for _, cb := range cbs {
		cb()
	}
}

// selfAdaptiveVisitPoll is the Algorithm 1 lines 10-13 path: the first visit
// after an invalidation polls the parent, notifies the switch back to TTL,
// and resumes the poll loop. onDone fires when the fresh content is in.
func (s *simulation) selfAdaptiveVisitPoll(i int, onDone func()) {
	p := s.tree.Parent(i)
	reqArr := s.send(i, p, s.cfg.LightSizeKB, netmodel.ClassLight)
	s.at(reqArr, func() {
		if s.nodes[p].down {
			// The source died: the automaton already returned to TTL
			// mode, so resume the poll loop (it will time out against
			// the dead parent but keeps the node live for repair-free
			// analysis) and serve the stale content.
			nd := s.nodes[i]
			if nd.pollStopped {
				nd.pollStopped = false
				s.at(s.eng.Now()+s.cfg.ServerTTL, func() { s.pollParent(i) })
			}
			if onDone != nil {
				onDone()
			}
			return
		}
		v := s.nodes[p].version
		respArr := s.send(p, i, s.cfg.UpdateSizeKB, netmodel.ClassUpdate)
		s.at(respArr, func() {
			nd := s.nodes[i]
			s.setVersion(nd, v)
			nd.valid = true
			// Notify the switch back (Algorithm 1 line 12).
			notifArr := s.send(i, p, s.cfg.LightSizeKB, netmodel.ClassLight)
			s.at(notifArr, func() { delete(s.nodes[p].subscribers, i) })
			// Resume TTL polling.
			if nd.pollStopped {
				nd.pollStopped = false
				s.at(s.eng.Now()+s.cfg.ServerTTL, func() { s.pollParent(i) })
			}
			if onDone != nil {
				onDone()
			}
		})
	})
}
