package cdn

import (
	"testing"
	"time"

	"cdnconsistency/internal/consistency"
	"cdnconsistency/internal/topology"
	"cdnconsistency/internal/workload"
)

func TestRegimeRequiresUnicast(t *testing.T) {
	for _, infra := range []consistency.Infra{consistency.InfraMulticast, consistency.InfraHybrid} {
		cfg := baseConfig(t, consistency.MethodRegime, infra)
		if _, err := Run(cfg); err == nil {
			t.Errorf("Regime on %v accepted", infra)
		}
	}
}

func TestRegimeRunsAndConverges(t *testing.T) {
	cfg := baseConfig(t, consistency.MethodRegime, consistency.InfraUnicast)
	cfg.HorizonSlack = 10 * time.Minute
	res := mustRun(t, cfg)
	if len(res.ServerAvgInconsistency) != 80 {
		t.Fatalf("server stats = %d", len(res.ServerAvgInconsistency))
	}
	// Eventual consistency: all servers reach the final snapshot. TTL-
	// and invalidation-regime servers get there via polls/visits.
	frac := float64(res.LiveServersAtFinalVersion) / float64(res.LiveServers)
	if frac < 0.95 {
		t.Errorf("converged fraction = %.2f, want ~1", frac)
	}
}

// With hot content (many users, sparse updates), regime servers migrate to
// Push and beat plain TTL's consistency without Push's full message bill on
// cold phases.
func TestRegimeHotContentApproachesPush(t *testing.T) {
	game := workload.GameConfig{
		Phases: []workload.Phase{
			{Name: "live", Duration: 30 * time.Minute, MeanGap: 60 * time.Second},
		},
		SizeKB: 1,
	}
	updates, err := workload.Schedule(game, 5)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(m consistency.Method) Config {
		return Config{
			Method:   m,
			Infra:    consistency.InfraUnicast,
			Topology: topology.Config{Servers: 40, UsersPerServer: 4, Seed: 5},
			Updates:  updates,
			Seed:     5,
			// Visits every 10s x 4 users vs updates every 60s:
			// ratio ~24 -> Push regime.
		}
	}
	regime := mustRun(t, mk(consistency.MethodRegime))
	ttl := mustRun(t, mk(consistency.MethodTTL))
	if regime.MeanServerInconsistency() >= ttl.MeanServerInconsistency()/2 {
		t.Errorf("regime staleness %.2fs not well below TTL %.2fs",
			regime.MeanServerInconsistency(), ttl.MeanServerInconsistency())
	}
}

// With cold content (no users) and frequent updates, regime servers migrate
// to Invalidation and use far fewer update messages than Push.
func TestRegimeColdContentSavesMessages(t *testing.T) {
	game := workload.GameConfig{
		Phases: []workload.Phase{
			{Name: "busy", Duration: 30 * time.Minute, MeanGap: 5 * time.Second},
		},
		SizeKB: 1,
	}
	updates, err := workload.Schedule(game, 6)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(m consistency.Method) Config {
		return Config{
			Method:   m,
			Infra:    consistency.InfraUnicast,
			Topology: topology.Config{Servers: 40, UsersPerServer: 1, Seed: 6},
			Updates:  updates,
			UserTTL:  3 * time.Minute, // visits every 3 min vs updates every 5s
			Seed:     6,
		}
	}
	regime := mustRun(t, mk(consistency.MethodRegime))
	push := mustRun(t, mk(consistency.MethodPush))
	if regime.UpdateMsgsToServers >= push.UpdateMsgsToServers/2 {
		t.Errorf("regime msgs (%d) not well below push (%d)",
			regime.UpdateMsgsToServers, push.UpdateMsgsToServers)
	}
}

func TestRegimeDeterministic(t *testing.T) {
	cfg := baseConfig(t, consistency.MethodRegime, consistency.InfraUnicast)
	a := mustRun(t, cfg)
	b := mustRun(t, cfg)
	if a.Events != b.Events || a.UpdateMsgsToServers != b.UpdateMsgsToServers {
		t.Error("regime runs diverged")
	}
}

func TestRegimeWithFailures(t *testing.T) {
	cfg := baseConfig(t, consistency.MethodRegime, consistency.InfraUnicast)
	cfg.FailServers = 10
	res := mustRun(t, cfg)
	if res.LiveServers != 70 {
		t.Errorf("live servers = %d", res.LiveServers)
	}
}
