package cdn

import (
	"strings"
	"testing"

	"cdnconsistency/internal/consistency"
	"cdnconsistency/internal/topology"
)

// A configuration with zero scheduled updates must be rejected with a
// descriptive error, not an index-out-of-range panic.
func TestNewSimulationRejectsEmptyUpdates(t *testing.T) {
	cfg := Config{
		Method:   consistency.MethodPush,
		Infra:    consistency.InfraUnicast,
		Topology: topology.Config{Servers: 10, UsersPerServer: 1, Seed: 1},
		Seed:     1,
	}
	// Bypass withDefaults (which substitutes a default schedule) to hit
	// newSimulation directly with an empty schedule.
	s, err := newSimulation(cfg)
	if err == nil {
		t.Fatalf("newSimulation with zero updates succeeded: %+v", s)
	}
	if !strings.Contains(err.Error(), "updates") {
		t.Errorf("error %q does not mention updates", err)
	}
}

// Run still works with an empty schedule because withDefaults substitutes
// the default game day — the guard must not break that path.
func TestRunDefaultsEmptyUpdates(t *testing.T) {
	cfg := baseConfig(t, consistency.MethodTTL, consistency.InfraUnicast)
	cfg.Updates = nil
	if _, err := Run(cfg); err != nil {
		t.Fatalf("Run with defaulted updates: %v", err)
	}
}

// failServer must clear the liveness flag on every path, including the
// no-repair ones, so later bookkeeping (Validate, TotalEdgeKm, repairs)
// never counts a dead server.
func TestFailServerClearsLivenessWithoutRepair(t *testing.T) {
	cases := []struct {
		name   string
		infra  consistency.Infra
		repair bool
	}{
		{"unicast no-repair", consistency.InfraUnicast, false},
		{"unicast repair-flag", consistency.InfraUnicast, true},
		{"multicast no-repair", consistency.InfraMulticast, false},
		{"multicast repair", consistency.InfraMulticast, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := baseConfig(t, consistency.MethodPush, tc.infra)
			cfg.RepairTree = tc.repair
			cfg.TreeDegree = 2
			full, err := cfg.withDefaults()
			if err != nil {
				t.Fatal(err)
			}
			s, err := newSimulation(full)
			if err != nil {
				t.Fatal(err)
			}
			for _, v := range []int{3, 9, 17} {
				s.failServer(v)
				if s.alive[v] {
					t.Errorf("alive[%d] still set after failServer", v)
				}
				if !s.nodes[v].down {
					t.Errorf("node %d not marked down", v)
				}
			}
			// Failing an already-down server must be a no-op.
			s.failServer(3)
		})
	}
}

// After multiple sequential repairs the tree must stay a valid
// degree-bounded structure over live nodes, and no live node may sit under
// a downed parent.
func TestSequentialRepairsKeepTreeValid(t *testing.T) {
	cfg := baseConfig(t, consistency.MethodPush, consistency.InfraMulticast)
	cfg.TreeDegree = 2
	cfg.RepairTree = true
	full, err := cfg.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	s, err := newSimulation(full)
	if err != nil {
		t.Fatal(err)
	}
	victims := []int{5, 12, 40, 7, 33, 21, 60, 2}
	for _, v := range victims {
		s.failServer(v)
		if err := s.tree.Validate(full.TreeDegree, s.alive); err != nil {
			t.Fatalf("tree invalid after failing %d: %v", v, err)
		}
	}
	for i := 1; i < len(s.nodes); i++ {
		if !s.alive[i] {
			continue
		}
		p := s.tree.Parent(i)
		if p > 0 && s.nodes[p].down {
			t.Errorf("live node %d attached under downed server %d", i, p)
		}
	}
}

// End-to-end: a full run with repairs enabled ends with a valid tree over
// live nodes and no live node parked under a dead parent.
func TestRunWithFailuresEndsWithValidLiveTree(t *testing.T) {
	cfg := baseConfig(t, consistency.MethodPush, consistency.InfraMulticast)
	cfg.TreeDegree = 2
	cfg.FailServers = 10
	cfg.RepairTree = true
	full, err := cfg.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	s, err := newSimulation(full)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.run()
	if err != nil {
		t.Fatal(err)
	}
	if res.FailedServers != 10 {
		t.Fatalf("FailedServers = %d, want 10", res.FailedServers)
	}
	if err := s.tree.Validate(full.TreeDegree, s.alive); err != nil {
		t.Errorf("tree invalid after run: %v", err)
	}
	for i := 1; i < len(s.nodes); i++ {
		if s.nodes[i].down != !s.alive[i] {
			t.Errorf("node %d: down=%v but alive=%v", i, s.nodes[i].down, s.alive[i])
		}
		if !s.alive[i] {
			continue
		}
		if p := s.tree.Parent(i); p > 0 && s.nodes[p].down {
			t.Errorf("live node %d attached under downed server %d", i, p)
		}
	}
}
