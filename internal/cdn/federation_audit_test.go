package cdn

import (
	"errors"
	"testing"
	"time"

	"cdnconsistency/internal/audit"
	"cdnconsistency/internal/consistency"
	"cdnconsistency/internal/federation"
)

// The auditor must catch federation bookkeeping corruption. The federation
// runtime keeps every counter twice — the cell tallies the Result reports
// and an independent fed-side ledger — so tampering with either side of a
// pair mid-run splits them and the named conservation property fires. Each
// case corrupts one piece of state behind the simulation's back during the
// storm and expects that property.
func TestAuditorCatchesFederationCorruption(t *testing.T) {
	cases := []struct {
		name     string
		corrupt  func(s *simulation)
		property string
	}{
		{
			name:     "degraded seconds inflated",
			corrupt:  func(s *simulation) { s.cells[0].degradedSeconds += 10 },
			property: "degradation-ledger",
		},
		{
			name:     "phantom degradation interval",
			corrupt:  func(s *simulation) { s.cells[0].degradedEnters++ },
			property: "degradation-conservation",
		},
		{
			name:     "unledgered exit",
			corrupt:  func(s *simulation) { s.cells[0].degradedExits++ },
			property: "degradation-conservation",
		},
		{
			name:     "unledgered provider switch",
			corrupt:  func(s *simulation) { s.cells[0].providerSwitches++ },
			property: "switch-ledger",
		},
		{
			name:     "unledgered peering hand-off",
			corrupt:  func(s *simulation) { s.cells[0].peerHandoffs++ },
			property: "handoff-ledger",
		},
		{
			name:     "server homed at a phantom provider",
			corrupt:  func(s *simulation) { s.fed.home[1] = 99 },
			property: "home-bounds",
		},
		{
			name:     "provider ahead of the ground truth",
			corrupt:  func(s *simulation) { s.fed.prov[0].version = 1 << 20 },
			property: "provider-version-bounds",
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			cfg := fedTestConfig(t, consistency.MethodTTL, consistency.InfraUnicast,
				federation.DefaultSpec(3), "provider-storm")
			full, err := cfg.withDefaults()
			if err != nil {
				t.Fatal(err)
			}
			s, err := newSimulation(full)
			if err != nil {
				t.Fatal(err)
			}
			s.at(0, 4*time.Minute, func() { tc.corrupt(s) })
			_, err = s.run()
			var v *audit.Violation
			if !errors.As(err, &v) {
				t.Fatalf("corrupted run returned %v, want an audit violation", err)
			}
			if v.Property != tc.property {
				t.Fatalf("violation property %q, want %q (detail: %s)", v.Property, tc.property, v.Detail)
			}
		})
	}
}
