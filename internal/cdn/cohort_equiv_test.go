package cdn

import (
	"math"
	"testing"

	"cdnconsistency/internal/consistency"
	"cdnconsistency/internal/fault"
	"cdnconsistency/internal/topology"
	"cdnconsistency/internal/workload"
)

// The metamorphic equivalence suite: for any shared population, the cohort
// model must reproduce the explicit model's results exactly — not within a
// statistical tolerance. The cohort decomposition (one leader stratum, one
// follower stratum per cohort) is an exact refactoring of the explicit
// per-user accounting, so every integer counter, every server mean, and every
// per-user mean must reconstruct bit-for-bit. The only tolerated float drift
// is in pooled means whose summation order differs (see assertEquivalent).

// equivPopulation draws a small heavy-tailed population and asserts the
// issue's small-N bound (<= 50 users per server) so the explicit runs stay
// cheap under -race.
func equivPopulation(t *testing.T, servers, total int, seed int64) *workload.Population {
	t.Helper()
	pop, err := workload.GeneratePopulation(workload.PopulationConfig{
		Servers:          servers,
		TotalUsers:       total,
		Alpha:            1.2,
		CohortsPerServer: 3,
		Seed:             seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	for si, cohorts := range pop.Servers {
		n := 0
		for _, c := range cohorts {
			n += c.Count
		}
		if n > 50 {
			t.Fatalf("population seed %d: server %d holds %d users, want <= 50", seed, si, n)
		}
	}
	return pop
}

// equivConfig is the shared run setup; only UserModel differs between the
// paired runs. Visit accounting and the runtime auditor are always on, so
// every equivalence case doubles as an audited-clean certificate for both
// models (including the cohort-conservation and visit-traffic invariants).
func equivConfig(t *testing.T, method consistency.Method, infra consistency.Infra,
	seed int64, pop *workload.Population, scenario string) Config {
	t.Helper()
	updates, err := workload.Schedule(testGame(), seed)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Method:        method,
		Infra:         infra,
		Topology:      topology.Config{Servers: len(pop.Servers), UsersPerServer: 1, Seed: seed},
		Clusters:      4,
		Updates:       updates,
		Seed:          seed,
		Population:    pop,
		AccountVisits: true,
		Audit:         &AuditOptions{},
	}
	if scenario != "" {
		spec, err := fault.Scenario(scenario)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Faults = &spec
		cfg.Failover = true
	}
	return cfg
}

// runPair executes the same configuration under both user models.
func runPair(t *testing.T, cfg Config) (explicit, cohort *Result) {
	t.Helper()
	ecfg := cfg
	ecfg.UserModel = UserModelExplicit
	ccfg := cfg
	ccfg.UserModel = UserModelCohort
	return mustRun(t, ecfg), mustRun(t, ccfg)
}

// assertEquivalent holds the cohort run to the explicit run:
//
//   - every integer counter matches exactly;
//   - ServerAvgInconsistency matches exactly (the server side of the
//     simulation sees an identical event stream);
//   - each explicit user's mean reconstructs exactly from its cohort
//     stratum (member 0 from the leader entry, members 1..count-1 from the
//     follower entry);
//   - traffic ledgers match message-exactly per class, with KB within 1e-9
//     (batched accounting adds size*count where the explicit model adds
//     size count times);
//   - pooled MeanUserInconsistency within 1e-9 relative (weighted vs
//     unweighted summation order).
func assertEquivalent(t *testing.T, pop *workload.Population, exp, coh *Result) {
	t.Helper()
	ints := []struct {
		name   string
		ev, cv int
	}{
		{"UserObservations", exp.UserObservations, coh.UserObservations},
		{"UserInconsistentObservations", exp.UserInconsistentObservations, coh.UserInconsistentObservations},
		{"StaleObservations", exp.StaleObservations, coh.StaleObservations},
		{"FailedVisits", exp.FailedVisits, coh.FailedVisits},
		{"UserFailovers", exp.UserFailovers, coh.UserFailovers},
		{"UpdateMsgsToServers", exp.UpdateMsgsToServers, coh.UpdateMsgsToServers},
		{"UpdateMsgsFromProvider", exp.UpdateMsgsFromProvider, coh.UpdateMsgsFromProvider},
		{"LightMsgs", exp.LightMsgs, coh.LightMsgs},
		{"TreeDepth", exp.TreeDepth, coh.TreeDepth},
		{"Supernodes", exp.Supernodes, coh.Supernodes},
		{"Crashes", exp.Crashes, coh.Crashes},
		{"Recoveries", exp.Recoveries, coh.Recoveries},
		{"FailedServers", exp.FailedServers, coh.FailedServers},
		{"LiveServers", exp.LiveServers, coh.LiveServers},
		{"LiveServersAtFinalVersion", exp.LiveServersAtFinalVersion, coh.LiveServersAtFinalVersion},
		{"ServerReparents", exp.ServerReparents, coh.ServerReparents},
		{"TTLFallbacks", exp.TTLFallbacks, coh.TTLFallbacks},
	}
	for _, c := range ints {
		if c.ev != c.cv {
			t.Errorf("%s: explicit %d, cohort %d", c.name, c.ev, c.cv)
		}
	}

	if len(exp.ServerAvgInconsistency) != len(coh.ServerAvgInconsistency) {
		t.Fatalf("ServerAvgInconsistency length: explicit %d, cohort %d",
			len(exp.ServerAvgInconsistency), len(coh.ServerAvgInconsistency))
	}
	for i := range exp.ServerAvgInconsistency {
		if exp.ServerAvgInconsistency[i] != coh.ServerAvgInconsistency[i] {
			t.Errorf("ServerAvgInconsistency[%d]: explicit %v, cohort %v",
				i, exp.ServerAvgInconsistency[i], coh.ServerAvgInconsistency[i])
		}
	}

	// Per-user reconstruction. The explicit model materializes the
	// population in spec order, so its users line up with the cohort
	// strata: cohort entry pairs (leader, follow) expand to (member 0,
	// members 1..count-1).
	if exp.UserWeights != nil {
		t.Errorf("explicit run emitted UserWeights (len %d), want nil", len(exp.UserWeights))
	}
	if len(coh.UserAvgInconsistency) != len(coh.UserWeights) {
		t.Fatalf("cohort UserWeights length %d != entries %d",
			len(coh.UserWeights), len(coh.UserAvgInconsistency))
	}
	wantUsers := pop.TotalUsers()
	if len(exp.UserAvgInconsistency) != wantUsers {
		t.Fatalf("explicit users: %d, population: %d", len(exp.UserAvgInconsistency), wantUsers)
	}
	cohTotal := 0
	for _, w := range coh.UserWeights {
		cohTotal += w
	}
	if cohTotal != wantUsers {
		t.Fatalf("cohort weights sum to %d users, population holds %d", cohTotal, wantUsers)
	}
	eu, ce := 0, 0 // explicit user cursor, cohort entry cursor
	for _, cohorts := range pop.Servers {
		for _, spec := range cohorts {
			leader := coh.UserAvgInconsistency[ce]
			if w := coh.UserWeights[ce]; w != 1 {
				t.Fatalf("entry %d: leader weight %d, want 1", ce, w)
			}
			ce++
			if got := exp.UserAvgInconsistency[eu]; got != leader {
				t.Errorf("user %d (leader): explicit %v, cohort %v", eu, got, leader)
			}
			eu++
			if spec.Count > 1 {
				follow := coh.UserAvgInconsistency[ce]
				if w := coh.UserWeights[ce]; w != spec.Count-1 {
					t.Fatalf("entry %d: follower weight %d, want %d", ce, w, spec.Count-1)
				}
				ce++
				for k := 1; k < spec.Count; k++ {
					if got := exp.UserAvgInconsistency[eu]; got != follow {
						t.Errorf("user %d (follower %d): explicit %v, cohort stratum %v", eu, k, got, follow)
					}
					eu++
				}
			}
		}
	}
	if ce != len(coh.UserAvgInconsistency) {
		t.Errorf("consumed %d cohort entries of %d", ce, len(coh.UserAvgInconsistency))
	}

	// Traffic: same classes, message counts exact, KB within float noise.
	ecl, ccl := exp.Accounting.Classes(), coh.Accounting.Classes()
	if len(ecl) != len(ccl) {
		t.Fatalf("accounting classes: explicit %v, cohort %v", ecl, ccl)
	}
	for _, class := range ecl {
		et, ct := exp.Accounting.ByClass[class], coh.Accounting.ByClass[class]
		if et.Messages != ct.Messages {
			t.Errorf("traffic %v messages: explicit %d, cohort %d", class, et.Messages, ct.Messages)
		}
		if math.Abs(et.KB-ct.KB) > 1e-9*math.Max(1, math.Abs(et.KB)) {
			t.Errorf("traffic %v KB: explicit %v, cohort %v", class, et.KB, ct.KB)
		}
		if et.Km != ct.Km || et.KmKB != ct.KmKB {
			t.Errorf("traffic %v distance: explicit (%v,%v), cohort (%v,%v)",
				class, et.Km, et.KmKB, ct.Km, ct.KmKB)
		}
	}

	em, cm := exp.MeanUserInconsistency(), coh.MeanUserInconsistency()
	if math.Abs(em-cm) > 1e-9*math.Max(1, math.Abs(em)) {
		t.Errorf("MeanUserInconsistency: explicit %v, cohort %v", em, cm)
	}
}

// TestCohortEquivalenceFaults is the core matrix: the four headline systems
// under every built-in fault scenario (plus the fault-free baseline), with
// failover reactions and the runtime auditor on. This is the issue's
// acceptance bar: equivalence must hold under -race for every scenario.
func TestCohortEquivalenceFaults(t *testing.T) {
	systems := []struct {
		name   string
		method consistency.Method
		infra  consistency.Infra
	}{
		{"TTL", consistency.MethodTTL, consistency.InfraUnicast},
		{"Invalidation", consistency.MethodInvalidation, consistency.InfraUnicast},
		{"Push", consistency.MethodPush, consistency.InfraUnicast},
		{"HAT", consistency.MethodSelfAdaptive, consistency.InfraHybrid},
	}
	scenarios := append([]string{""}, fault.ScenarioNames()...)
	const seed = 3
	pop := equivPopulation(t, 12, 110, seed)
	for _, sys := range systems {
		for _, scenario := range scenarios {
			name := sys.name + "/none"
			if scenario != "" {
				name = sys.name + "/" + scenario
			}
			sys, scenario := sys, scenario
			t.Run(name, func(t *testing.T) {
				t.Parallel()
				cfg := equivConfig(t, sys.method, sys.infra, seed, pop, scenario)
				exp, coh := runPair(t, cfg)
				assertEquivalent(t, pop, exp, coh)
			})
		}
	}
}

// TestCohortEquivalenceMethods covers the remaining update methods and
// infrastructures fault-free across two seeds (two distinct populations), so
// every protocol path through the user-model seam is pinned.
func TestCohortEquivalenceMethods(t *testing.T) {
	systems := []struct {
		name   string
		method consistency.Method
		infra  consistency.Infra
	}{
		{"Self", consistency.MethodSelfAdaptive, consistency.InfraUnicast},
		{"Hybrid", consistency.MethodTTL, consistency.InfraHybrid},
		{"AdaptiveTTL", consistency.MethodAdaptiveTTL, consistency.InfraUnicast},
		{"Lease", consistency.MethodLease, consistency.InfraUnicast},
		{"Regime", consistency.MethodRegime, consistency.InfraUnicast},
		{"Push-Multicast", consistency.MethodPush, consistency.InfraMulticast},
		{"Push-Broadcast", consistency.MethodPush, consistency.InfraBroadcast},
	}
	for _, seed := range []int64{1, 7} {
		pop := equivPopulation(t, 12, 110, seed)
		for _, sys := range systems {
			sys, seed, pop := sys, seed, pop
			t.Run(sys.name+"/seed"+string(rune('0'+seed)), func(t *testing.T) {
				t.Parallel()
				cfg := equivConfig(t, sys.method, sys.infra, seed, pop, "")
				exp, coh := runPair(t, cfg)
				assertEquivalent(t, pop, exp, coh)
			})
		}
	}
}
