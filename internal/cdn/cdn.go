// Package cdn runs the paper's trace-driven evaluation (Sections 4 and 5):
// a discrete-event simulation of a provider, content servers, and end-users
// exercising one update method (TTL, Push, Invalidation, Self-adaptive,
// AdaptiveTTL) over one infrastructure (unicast star, proximity-aware
// multicast tree, or the hybrid supernode overlay), with the netmodel
// accounting traffic the way the paper reports it.
package cdn

import (
	"context"
	"fmt"
	"strings"
	"time"

	"cdnconsistency/internal/consistency"
	"cdnconsistency/internal/fault"
	"cdnconsistency/internal/federation"
	"cdnconsistency/internal/netmodel"
	"cdnconsistency/internal/topology"
	"cdnconsistency/internal/workload"
)

// Config describes one simulation run.
type Config struct {
	Method consistency.Method
	Infra  consistency.Infra

	// TreeDegree is the multicast tree arity (the paper uses 2 in
	// Section 4); SupernodeDegree the hybrid supernode tree arity (4 in
	// Section 5); Clusters the hybrid cluster count (20 in Section 5.3).
	TreeDegree      int
	SupernodeDegree int
	Clusters        int

	// Topology sizes the CDN (ignored if Topo is set).
	Topology topology.Config
	// Topo optionally supplies a prebuilt topology shared across runs.
	Topo *topology.Topology

	// ServerTTL is the content servers' poll period (60 s in the paper);
	// UserTTL the end-users' visit period (10 s).
	ServerTTL time.Duration
	UserTTL   time.Duration

	// UpdateSizeKB is the update payload (1 KB in Section 4, swept to
	// 500 KB in Figure 19); LightSizeKB the control-message size (1 KB).
	UpdateSizeKB float64
	LightSizeKB  float64

	// Updates is the publication schedule (defaults to a DefaultGame
	// draw). StartDelay offsets the first publication (60 s in the
	// paper); UserStartMax bounds the random user start offsets (50 s).
	Updates      []workload.Update
	StartDelay   time.Duration
	UserStartMax time.Duration

	// HorizonSlack extends the simulation beyond the last update so
	// in-flight catch-ups complete.
	HorizonSlack time.Duration

	// UserSwitchEveryVisit makes each visit hit a uniformly random server
	// (the Figure 24 scenario).
	UserSwitchEveryVisit bool

	// UserModel selects how end-users are simulated: UserModelExplicit
	// (default) gives every user its own actor and visit loop, the paper's
	// Section 4 setup; UserModelCohort simulates the population as weighted
	// per-server cohorts — one visit event per cohort per period with exact
	// aggregate accounting — so memory and event volume scale with cohorts,
	// not users. The cohort model requires Population and is incompatible
	// with the per-user routing scenarios (UseDNSRouting,
	// UserSwitchEveryVisit), whose per-visit randomness is inherently
	// per-user.
	UserModel string

	// Population optionally pins the user population to weighted per-server
	// cohorts (counts, start offsets, periods; see workload.Population).
	// Under the explicit model it is expanded to one actor per member with
	// the cohort's deterministic offset; under the cohort model it is
	// simulated in aggregate. Both draw no engine randomness for user
	// scheduling, so the two models run identical event streams — the
	// equivalence the cohort test suite locks down. Nil keeps the topology's
	// per-server user count with random start offsets (the paper setup).
	Population *workload.Population

	// AccountVisits books every end-user request as a zero-distance
	// content-class message against the serving server in the traffic
	// ledger (batched per cohort under the cohort model). Off by default:
	// the paper's traffic figures count only update and control traffic.
	AccountVisits bool

	// UseDNSRouting routes each visit through a modeled local DNS
	// resolver (Figure 1): the resolver caches the server assignment for
	// ResolverTTL, and expired entries re-resolve at the authoritative
	// DNS, which picks among the nearest servers with load balancing —
	// the redirection mechanism behind user-observed inconsistency
	// (Section 3.3). Mutually exclusive with UserSwitchEveryVisit.
	UseDNSRouting bool
	// ResolverTTL is the local DNS cache lifetime; default 30 s.
	ResolverTTL time.Duration

	// LeaseDuration is the cooperative-lease lifetime for MethodLease;
	// default 60 s.
	LeaseDuration time.Duration

	// FailServers crash-stops that many randomly chosen servers at random
	// times inside the failure window. Failed servers stop responding to
	// polls, fetches, pushes and visits. This exercises the paper's
	// criticism that node failures break multicast-tree connectivity
	// (Section 1).
	FailServers int
	// FailWindowStart/FailWindowFrac position the FailServers crash window
	// as fractions of the horizon: crashes land uniformly in
	// [FailWindowStart, FailWindowStart+FailWindowFrac] x horizon. Both
	// zero selects the classic middle third.
	FailWindowStart float64
	FailWindowFrac  float64
	// RepairTree re-attaches a failed node's orphaned children to the
	// nearest live node (multicast only). Without it the failed node's
	// subtree stops receiving pushed updates. It also governs whether
	// crash-recovered servers re-join the multicast tree via Reattach.
	RepairTree bool

	// Federation optionally runs the simulation against a multi-CDN
	// federation (see internal/federation): N provider origins with distinct
	// TTLs and propagation delays, anycast nearest-provider homing,
	// inter-CDN peering hand-off when a home provider is down, an optional
	// meta-CDN broker that durably re-homes servers with hysteresis, and
	// graceful serve-stale degradation (bounded by StaleCap) when every
	// provider is unreachable. Serial-only, and incompatible with the
	// provider-direct methods (Lease, Regime) and InfraBroadcast.
	Federation *federation.Spec

	// Faults optionally injects a declarative fault scenario — crash-stop,
	// crash-recovery with state loss, provider outage windows, ISP-level
	// partitions, transient overload, regional failures — compiled
	// deterministically against this run's topology (see internal/fault).
	// The compile uses a dedicated RNG stream derived from Seed, so runs
	// with and without faults share topology and user schedules.
	Faults *fault.Spec
	// Failover enables failure-aware protocol reactions: poll/fetch
	// timeouts trigger bounded retries with exponential backoff, servers
	// orphaned by a dead relay reparent to the nearest live node, users
	// re-resolve (DNS) or re-home to the nearest live server after failed
	// visits, subscribed nodes fall back to TTL polling during provider
	// outages, and recovering servers retry their re-sync until caught up.
	// Off by default: protocols ride out faults exactly as before.
	Failover bool

	// Audit, when set, enables the runtime invariant auditor (see
	// AuditOptions): conservation properties are verified at cadence during
	// the run and after every failover tree mutation, and the first
	// violation aborts the run as its error. The auditor observes state
	// without mutating it or drawing randomness, so all reported metrics
	// are identical with auditing on or off. In a serial run sweeps are
	// engine events (Result.Events grows by the sweep count); in a sharded
	// run (Shards > 0) sweeps execute at window barriers instead, so even
	// Result.Events is unchanged.
	Audit *AuditOptions

	// Ctx, when set, is polled at a fixed event stride inside the event
	// loop; cancelling it aborts the run promptly with the context's error.
	// Nil means the run cannot be cancelled.
	Ctx context.Context

	// OnTick, when set, is invoked at the same event stride with the
	// current virtual time and processed-event count. It backs external
	// liveness probes (stuck-job watchdogs); it must be cheap and must not
	// touch simulation state. Under a sharded run (Shards > 0) it reports
	// cell 0's clock and event count and may be called from a worker
	// goroutine, so it must also be safe to call concurrently with the
	// caller's own goroutine.
	OnTick func(now time.Duration, events uint64)

	// Shards selects the execution engine. Zero (the default) runs the
	// classic serial engine. A value >= 1 runs the sharded engine: the
	// server topology is partitioned into ShardCells cells, each with its
	// own event heap and RNG stream, synchronized by a conservative
	// time-window barrier, with Shards worker goroutines executing cells in
	// parallel. Results are a pure function of (Seed, ShardCells) — the
	// worker count changes only wall-clock time, never output. Sharded runs
	// are a different simulation than serial runs of the same seed (cells
	// draw independent RNG streams), and a few inherently global features
	// are unavailable: UseDNSRouting, UserSwitchEveryVisit, OnCatchUp, and
	// multicast tree mutation (Failover/RepairTree under InfraMulticast).
	// The runtime auditor composes with sharding: its sweeps run at window
	// barriers (see AuditOptions).
	Shards int
	// ShardCells is the partition granularity for sharded runs: the number
	// of topology cells (clamped to the number of partition atoms). It is
	// part of the simulation's identity — changing it changes results —
	// so invariance suites fix ShardCells and vary Shards. Default 8.
	ShardCells int
	// ShardStaticWindows disables adaptive windowing for sharded runs,
	// pinning the fixed-lookahead barrier. Like ShardCells it is part of
	// the simulation's identity: window fusion changes which cross-cell
	// sends share a barrier batch, which can reorder same-timestamp
	// arrivals — results are worker-count-invariant in either mode, but the
	// modes are distinct simulations. Default off (adaptive windows).
	ShardStaticWindows bool

	Net  netmodel.Config
	Seed int64

	// OnCatchUp, when set, is invoked synchronously whenever a server
	// catches an update: server index (0-based), snapshot id, and the
	// catch-up delay. Downstream users build staleness time series from
	// it; the callback must not retain references past the call.
	OnCatchUp func(server, snapshot int, delay time.Duration)
}

func (c Config) withDefaults() (Config, error) {
	if !c.Method.Valid() {
		return c, fmt.Errorf("cdn: invalid method %v", c.Method)
	}
	if !c.Infra.Valid() {
		return c, fmt.Errorf("cdn: invalid infra %v", c.Infra)
	}
	if c.TreeDegree <= 0 {
		c.TreeDegree = 2
	}
	if c.SupernodeDegree <= 0 {
		c.SupernodeDegree = 4
	}
	if c.Clusters <= 0 {
		c.Clusters = 20
	}
	if c.ServerTTL <= 0 {
		c.ServerTTL = 60 * time.Second
	}
	if c.UserTTL <= 0 {
		c.UserTTL = 10 * time.Second
	}
	if c.UpdateSizeKB <= 0 {
		c.UpdateSizeKB = 1
	}
	if c.LightSizeKB <= 0 {
		c.LightSizeKB = 1
	}
	if c.StartDelay < 0 {
		return c, fmt.Errorf("cdn: negative StartDelay %v", c.StartDelay)
	}
	if c.StartDelay == 0 {
		c.StartDelay = 60 * time.Second
	}
	if c.UserStartMax <= 0 {
		c.UserStartMax = 50 * time.Second
	}
	if c.HorizonSlack <= 0 {
		c.HorizonSlack = 5 * time.Minute
	}
	if c.ResolverTTL <= 0 {
		c.ResolverTTL = 30 * time.Second
	}
	if c.LeaseDuration <= 0 {
		c.LeaseDuration = 60 * time.Second
	}
	if c.Method == consistency.MethodLease && c.Infra != consistency.InfraUnicast {
		return c, fmt.Errorf("cdn: MethodLease requires InfraUnicast (leaseholders are provider-direct)")
	}
	if c.Method == consistency.MethodRegime && c.Infra != consistency.InfraUnicast {
		return c, fmt.Errorf("cdn: MethodRegime requires InfraUnicast (regimes register provider-direct)")
	}
	if c.Infra == consistency.InfraBroadcast && c.Method != consistency.MethodPush {
		return c, fmt.Errorf("cdn: InfraBroadcast supports only MethodPush (flooding-based push)")
	}
	if c.UseDNSRouting && c.UserSwitchEveryVisit {
		return c, fmt.Errorf("cdn: UseDNSRouting and UserSwitchEveryVisit are mutually exclusive")
	}
	switch c.UserModel {
	case "":
		c.UserModel = UserModelExplicit
	case UserModelExplicit:
	case UserModelCohort:
		if c.Population == nil {
			return c, fmt.Errorf("cdn: UserModelCohort requires a Population")
		}
		if c.UseDNSRouting || c.UserSwitchEveryVisit {
			return c, fmt.Errorf("cdn: UserModelCohort is incompatible with per-visit user routing (UseDNSRouting/UserSwitchEveryVisit)")
		}
	default:
		return c, fmt.Errorf("cdn: unknown user model %q (want %q or %q)", c.UserModel, UserModelExplicit, UserModelCohort)
	}
	if c.Population != nil {
		if err := c.Population.Validate(); err != nil {
			return c, fmt.Errorf("cdn: %w", err)
		}
		if c.UseDNSRouting {
			return c, fmt.Errorf("cdn: Population pins users to servers; incompatible with UseDNSRouting")
		}
	}
	if c.FailServers < 0 {
		return c, fmt.Errorf("cdn: negative FailServers %d", c.FailServers)
	}
	if c.Federation != nil {
		if err := c.Federation.Validate(); err != nil {
			return c, fmt.Errorf("cdn: %w", err)
		}
		if c.Shards > 0 {
			return c, fmt.Errorf("cdn: sharded runs cannot use Federation (provider selection and degradation are global state; federate a serial run)")
		}
		if c.Method == consistency.MethodLease {
			return c, fmt.Errorf("cdn: Federation is incompatible with MethodLease (leaseholders are provider-direct)")
		}
		if c.Method == consistency.MethodRegime {
			return c, fmt.Errorf("cdn: Federation is incompatible with MethodRegime (regimes register provider-direct)")
		}
		if c.Infra == consistency.InfraBroadcast {
			return c, fmt.Errorf("cdn: Federation is incompatible with InfraBroadcast (flooding has no origin to federate)")
		}
	}
	if c.Shards < 0 {
		return c, fmt.Errorf("cdn: negative Shards %d", c.Shards)
	}
	if c.ShardCells < 0 {
		return c, fmt.Errorf("cdn: negative ShardCells %d", c.ShardCells)
	}
	if c.Shards > 0 {
		if c.ShardCells == 0 {
			c.ShardCells = 8
		}
		if c.UseDNSRouting {
			return c, fmt.Errorf("cdn: sharded runs cannot use UseDNSRouting (the authoritative DNS is global state)")
		}
		if c.UserSwitchEveryVisit {
			return c, fmt.Errorf("cdn: sharded runs cannot use UserSwitchEveryVisit (visits would cross cells)")
		}
		if c.OnCatchUp != nil {
			return c, fmt.Errorf("cdn: sharded runs cannot use OnCatchUp (callbacks would fire from multiple goroutines)")
		}
		if c.Infra == consistency.InfraMulticast && (c.Failover || c.RepairTree) {
			return c, fmt.Errorf("cdn: sharded runs cannot mutate the multicast tree (Failover/RepairTree); the partition is static")
		}
	}
	if c.Audit != nil {
		if c.Audit.Cadence < 0 {
			return c, fmt.Errorf("cdn: negative audit cadence %v", c.Audit.Cadence)
		}
		if !ValidAuditSelfTest(c.Audit.SelfTest) {
			return c, fmt.Errorf("cdn: unknown audit self-test %q (valid: %s)",
				c.Audit.SelfTest, strings.Join(AuditSelfTestNames(), ", "))
		}
	}
	if c.FailWindowStart == 0 && c.FailWindowFrac == 0 {
		c.FailWindowStart, c.FailWindowFrac = 1.0/3, 1.0/3
	}
	if c.FailWindowStart < 0 || c.FailWindowStart >= 1 {
		return c, fmt.Errorf("cdn: FailWindowStart %v outside [0, 1)", c.FailWindowStart)
	}
	if c.FailWindowFrac <= 0 || c.FailWindowStart+c.FailWindowFrac > 1 {
		return c, fmt.Errorf("cdn: failure window [%v, %v+%v] outside (0, 1]",
			c.FailWindowStart, c.FailWindowStart, c.FailWindowFrac)
	}
	if len(c.Updates) == 0 {
		updates, err := workload.Schedule(workload.DefaultGame(), c.Seed)
		if err != nil {
			return c, fmt.Errorf("cdn: default schedule: %w", err)
		}
		c.Updates = updates
	}
	for i := 1; i < len(c.Updates); i++ {
		if c.Updates[i].At < c.Updates[i-1].At {
			return c, fmt.Errorf("cdn: updates not time-ordered at %d", i)
		}
	}
	return c, nil
}

// Result aggregates one run's outcomes.
type Result struct {
	// ServerAvgInconsistency is each server's mean catch-up delay in
	// seconds (Figures 14(a), 15(a), 19, 20).
	ServerAvgInconsistency []float64
	// UserAvgInconsistency is each user's mean catch-up delay in seconds
	// (Figures 14(b), 15(b)). Under the cohort model each entry is one
	// stratum of identical users; see UserWeights.
	UserAvgInconsistency []float64
	// UserWeights gives the user count behind each UserAvgInconsistency
	// entry under the cohort model (so a million-user run does not
	// materialize a million entries). Nil under the explicit model: every
	// entry is one user.
	UserWeights []int
	// Accounting is the traffic breakdown (Figures 16, 17, 18(b), 23).
	Accounting netmodel.Accounting
	// UpdateMsgsToServers counts update-class messages delivered to
	// content servers (Figure 22(a)); UpdateMsgsFromProvider those sent
	// by the provider itself (Figure 22(b)).
	UpdateMsgsToServers    int
	UpdateMsgsFromProvider int
	// LightMsgs counts control messages (polls, invalidations, switch
	// notifications).
	LightMsgs int
	// UserObservations / UserInconsistentObservations feed the Figure 24
	// metric (observations older than the user's newest-seen content).
	UserObservations             int
	UserInconsistentObservations int
	// TreeDepth is the deepest server in the update infrastructure.
	TreeDepth int
	// Supernodes is the supernode count (hybrid only).
	Supernodes int
	// Events is the number of simulation events processed.
	Events uint64
	// FailedServers is how many servers were crash-stopped.
	FailedServers int
	// LiveServersAtFinalVersion counts live servers holding the last
	// published snapshot when the run ends — the connectivity measure the
	// tree-failure ablation reports.
	LiveServersAtFinalVersion int
	// LiveServers is the number of servers still alive at the end.
	LiveServers int
	// DNSRedirects counts visits whose resolver answer switched servers.
	DNSRedirects int
	// DNSVisits counts visits routed through DNS.
	DNSVisits int

	// Crashes counts server crash events (a crash-recovering server can
	// crash more than once); FailedServers above counts servers still down
	// at the end of the run.
	Crashes int
	// Recoveries counts crash-recoveries that re-synced to the provider
	// version observed at recovery time; RecoverySeconds holds each such
	// recovery's downtime-to-resync duration.
	Recoveries      int
	RecoverySeconds []float64
	// FailedVisits counts user requests that hit a down server;
	// UserFailovers counts the re-resolutions/re-homings that followed
	// (Failover only).
	FailedVisits  int
	UserFailovers int
	// ServerReparents counts detection-triggered tree repairs: a poller
	// that exhausted its retries against a dead relay parent and moved its
	// orphan group to the nearest live node (Failover only).
	ServerReparents int
	// TTLFallbacks counts subscribed (push/invalidation-regime or
	// self-adaptive) servers that reverted to TTL polling during a
	// provider outage (Failover only).
	TTLFallbacks int
	// StaleObservations counts user observations older than the newest
	// published snapshot at observation time — the stale-serve metric the
	// fault figures report.
	StaleObservations int

	// Federation outcomes (all zero when Config.Federation is nil).
	//
	// DegradedSeconds sums every server's serve-stale degradation intervals:
	// time spent serving cached content after an origin contact found all
	// providers down, until the first successful contact (or the horizon).
	// DegradedEnters/DegradedExits count the interval endpoints.
	DegradedSeconds float64
	DegradedEnters  int
	DegradedExits   int
	// ProviderSwitches counts durable home-provider changes (broker
	// decisions and retry-exhaustion failovers); PeerHandoffs counts
	// transient inter-CDN peering answers while a home provider was down.
	ProviderSwitches int
	PeerHandoffs     int
	// StrandedUsers counts users whose final visit of the run failed — the
	// all-providers-down acceptance metric: with unlimited serve-stale it
	// must be zero.
	StrandedUsers int

	// AuditChecks counts the invariant-auditor passes that ran (cadence
	// sweeps, post-mutation tree checks, and the final sweep); zero when
	// auditing was off. A nonzero count with a nil run error is the
	// "audited clean" certificate.
	AuditChecks int
}

// MeanServerInconsistency averages the per-server means.
func (r *Result) MeanServerInconsistency() float64 { return mean(r.ServerAvgInconsistency) }

// MeanUserInconsistency averages the per-user means, weighting each entry by
// the user count behind it (one, unless UserWeights says otherwise).
func (r *Result) MeanUserInconsistency() float64 {
	if r.UserWeights == nil {
		return mean(r.UserAvgInconsistency)
	}
	var sum, n float64
	for i, x := range r.UserAvgInconsistency {
		w := 1.0
		if i < len(r.UserWeights) {
			w = float64(r.UserWeights[i])
		}
		sum += x * w
		n += w
	}
	if n == 0 {
		return 0
	}
	return sum / n
}

// InconsistentObservationFrac is the Figure 24 metric.
func (r *Result) InconsistentObservationFrac() float64 {
	if r.UserObservations == 0 {
		return 0
	}
	return float64(r.UserInconsistentObservations) / float64(r.UserObservations)
}

// StaleServeFrac is the share of user observations that served content older
// than the newest published snapshot.
func (r *Result) StaleServeFrac() float64 {
	if r.UserObservations == 0 {
		return 0
	}
	return float64(r.StaleObservations) / float64(r.UserObservations)
}

// FailedVisitFrac is the share of visits that hit a down server. Failed
// visits are not observations, so the denominator adds them back.
func (r *Result) FailedVisitFrac() float64 {
	total := r.UserObservations + r.FailedVisits
	if total == 0 {
		return 0
	}
	return float64(r.FailedVisits) / float64(total)
}

// MeanRecoverySeconds averages the crash-recovery re-sync times.
func (r *Result) MeanRecoverySeconds() float64 { return mean(r.RecoverySeconds) }

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Run executes one simulation.
func Run(cfg Config) (*Result, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	s, err := newSimulation(cfg)
	if err != nil {
		return nil, err
	}
	return s.run()
}
