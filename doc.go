// Package cdnconsistency reproduces "Measuring and Evaluating Live Content
// Consistency in a Large-Scale CDN" (Liu, Shen, Chandler, Li; ICDCS 2014 /
// IEEE TPDS 2015) as a Go library: the Section-3 crawl-measurement pipeline
// (internal/trace, internal/tracegen, internal/analysis), the Section-4
// trace-driven evaluation of update methods and infrastructures
// (internal/consistency, internal/overlay, internal/cdn), and the Section-5
// HAT proposal (internal/core). See README.md for the layout and
// EXPERIMENTS.md for the per-figure reproduction record.
package cdnconsistency
