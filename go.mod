module cdnconsistency

go 1.22
