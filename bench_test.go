package cdnconsistency_test

// One benchmark per data figure in the paper. Each regenerates the figure's
// series at bench scale and reports a headline metric so regressions in the
// reproduced *shape* are visible, not just runtime. The cmd/experiments
// binary produces the full-scale tables recorded in EXPERIMENTS.md.

import (
	"io"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"

	"cdnconsistency/internal/figures"
)

var (
	benchEnvOnce sync.Once
	benchEnv     *figures.TraceEnv
	benchEnvErr  error
)

func traceEnv(b *testing.B) *figures.TraceEnv {
	b.Helper()
	benchEnvOnce.Do(func() {
		benchEnv, benchEnvErr = figures.NewTraceEnv(figures.SmallTraceScale())
	})
	if benchEnvErr != nil {
		b.Fatalf("trace env: %v", benchEnvErr)
	}
	return benchEnv
}

// metricRow extracts the numeric value of a "# name" summary row.
func metricRow(tab *figures.Table, name string) (float64, bool) {
	for _, row := range tab.Rows {
		if len(row) < 2 || row[0] != name {
			continue
		}
		for _, cell := range row[1:] {
			if v, err := strconv.ParseFloat(strings.TrimSpace(cell), 64); err == nil {
				return v, true
			}
		}
	}
	return 0, false
}

func benchTraceFig(b *testing.B, fn func(*figures.TraceEnv) (*figures.Table, error), metric string) {
	env := traceEnv(b)
	b.ResetTimer()
	var tab *figures.Table
	for i := 0; i < b.N; i++ {
		var err error
		tab, err = fn(env)
		if err != nil {
			b.Fatal(err)
		}
	}
	if metric != "" {
		if v, ok := metricRow(tab, metric); ok {
			b.ReportMetric(v, strings.TrimPrefix(metric, "# "))
		}
	}
}

func benchSimFig(b *testing.B, fn func(figures.SimScale) (*figures.Table, error)) {
	scale := figures.SmallSimScale()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fn(scale); err != nil {
			b.Fatal(err)
		}
	}
}

// benchSimFigTiny shrinks sweep-heavy figures further.
func benchSimFigTiny(b *testing.B, fn func(figures.SimScale) (*figures.Table, error)) {
	scale := figures.SmallSimScale()
	scale.Servers = 30
	scale.UsersPerServer = 1
	scale.Clusters = 5
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fn(scale); err != nil {
			b.Fatal(err)
		}
	}
}

// Section 3 figures (measurement).

func BenchmarkFig03(b *testing.B) { benchTraceFig(b, figures.Fig03, "# mean_s") }
func BenchmarkFig04(b *testing.B) { benchTraceFig(b, figures.Fig04, "") }
func BenchmarkFig05(b *testing.B) { benchTraceFig(b, figures.Fig05, "") }
func BenchmarkFig06(b *testing.B) { benchTraceFig(b, figures.Fig06, "# inferred_ttl_s") }
func BenchmarkFig07(b *testing.B) { benchTraceFig(b, figures.Fig07, "# mean_s") }
func BenchmarkFig08(b *testing.B) { benchTraceFig(b, figures.Fig08, "# pearson_r") }
func BenchmarkFig09(b *testing.B) { benchTraceFig(b, figures.Fig09, "") }
func BenchmarkFig10(b *testing.B) { benchTraceFig(b, figures.Fig10, "") }
func BenchmarkFig11(b *testing.B) { benchTraceFig(b, figures.Fig11, "# server_rank_spread") }
func BenchmarkFig12(b *testing.B) { benchTraceFig(b, figures.Fig12, "# day0_frac_under_2ttl") }
func BenchmarkTreeVerdict(b *testing.B) {
	benchTraceFig(b, figures.TreeVerdictTable, "")
}

// Section 4 figures (trace-driven evaluation).

func BenchmarkFig14(b *testing.B) { benchSimFig(b, figures.Fig14) }
func BenchmarkFig15(b *testing.B) { benchSimFig(b, figures.Fig15) }
func BenchmarkFig16(b *testing.B) { benchSimFig(b, figures.Fig16) }
func BenchmarkFig17(b *testing.B) { benchSimFig(b, figures.Fig17) }
func BenchmarkFig18(b *testing.B) { benchSimFig(b, figures.Fig18) }
func BenchmarkFig19(b *testing.B) { benchSimFigTiny(b, figures.Fig19) }
func BenchmarkFig20(b *testing.B) { benchSimFigTiny(b, figures.Fig20) }

// Section 5 figures (HAT evaluation).

func BenchmarkFig22(b *testing.B) { benchSimFigTiny(b, figures.Fig22) }
func BenchmarkFig23(b *testing.B) { benchSimFig(b, figures.Fig23) }
func BenchmarkFig24(b *testing.B) { benchSimFigTiny(b, figures.Fig24) }

// Extension studies: what the paper discusses but does not evaluate.

func BenchmarkExtBroadcast(b *testing.B)   { benchSimFig(b, figures.ExtBroadcast) }
func BenchmarkExtTreeFailure(b *testing.B) { benchSimFig(b, figures.ExtTreeFailure) }
func BenchmarkExtLease(b *testing.B)       { benchSimFig(b, figures.ExtLease) }
func BenchmarkExtDNS(b *testing.B)         { benchSimFig(b, figures.ExtDNS) }
func BenchmarkExtRegime(b *testing.B)      { benchSimFig(b, figures.ExtRegime) }
func BenchmarkExtCatalog(b *testing.B)     { benchSimFig(b, figures.ExtCatalog) }

// BenchmarkExtScale is the cohort-model scalability guard: it runs the
// reduced ext-scale sweep (10^3 and 10^4 users over 30 servers, four
// protocols) and its allocs/op budget in the benchjson regression set holds
// the cohort visit path to its fixed-memory claim end to end. The perf
// report is silenced: `go test` interleaves the binary's stderr into stdout,
// which would split the benchmark result line the bench parser reads.
func BenchmarkExtScale(b *testing.B) {
	defer func(w io.Writer) { figures.ExtScalePerfOutput = w }(figures.ExtScalePerfOutput)
	figures.ExtScalePerfOutput = io.Discard
	benchSimFigTiny(b, figures.ExtScale)
}

// BenchmarkShardedExtScale is the same reduced sweep on the sharded
// multi-core engine: each run spreads over 4 workers draining the default
// 8-cell partition under conservative time-window synchronization. On a
// single-core host this measures pure sharding overhead (barriers + cross-
// cell merge); the wall-clock win appears once GOMAXPROCS exceeds 1.
// Guarded alongside BenchmarkExtScale so the overhead cannot silently grow.
func BenchmarkShardedExtScale(b *testing.B) {
	defer func(w io.Writer) { figures.ExtScalePerfOutput = w }(figures.ExtScalePerfOutput)
	figures.ExtScalePerfOutput = io.Discard
	scale := figures.SmallSimScale()
	scale.Servers = 30
	scale.UsersPerServer = 1
	scale.Clusters = 5
	scale.Shards = 4
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := figures.ExtScale(scale); err != nil {
			b.Fatal(err)
		}
	}
}

// Serial vs parallel fan-out of a sweep-heavy figure through the worker
// pool. Compare these two to see the wall-clock speedup on multicore
// hardware; the table contents are byte-identical either way.

func benchSimFigParallel(b *testing.B, fn func(figures.SimScale) (*figures.Table, error), workers int) {
	scale := figures.SmallSimScale()
	scale.Servers = 30
	scale.UsersPerServer = 1
	scale.Clusters = 5
	scale.Parallel = workers
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fn(scale); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig20Serial(b *testing.B) { benchSimFigParallel(b, figures.Fig20, 1) }
func BenchmarkFig20Parallel(b *testing.B) {
	benchSimFigParallel(b, figures.Fig20, runtime.GOMAXPROCS(0))
}
func BenchmarkFig19Serial(b *testing.B) { benchSimFigParallel(b, figures.Fig19, 1) }
func BenchmarkFig19Parallel(b *testing.B) {
	benchSimFigParallel(b, figures.Fig19, runtime.GOMAXPROCS(0))
}

// Design-decision ablations (DESIGN.md Section 5).

func BenchmarkAblationQueue(b *testing.B)     { benchSimFig(b, figures.AblationQueue) }
func BenchmarkAblationProximity(b *testing.B) { benchSimFig(b, figures.AblationProximity) }
func BenchmarkAblationAdaptive(b *testing.B)  { benchSimFig(b, figures.AblationAdaptive) }
func BenchmarkAblationHilbert(b *testing.B)   { benchSimFig(b, figures.AblationHilbert) }
func BenchmarkAblationDepth(b *testing.B)     { benchSimFig(b, figures.AblationFailure) }
