# Developer entry points. `make check` is the gate CI runs.

GO ?= go

.PHONY: check build vet test race bench bench-smoke profile experiments fuzz audit-smoke cover shard-equiv plan-smoke federation-smoke import-smoke

check: build vet race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Full benchmark sweep -> BENCH_<n>.json at the next free index, with an
# informational diff against the newest committed baseline. See
# scripts/bench.sh for the BENCH_* environment knobs.
bench:
	./scripts/bench.sh

# The CI regression gate: the guarded figure + hot-path benchmarks only,
# compared strictly (>20% ns/op or allocs/op fails) against the newest
# committed BENCH_<n>.json.
bench-smoke:
	BENCH_PATTERN='Fig19$$|Fig20$$|ExtScale$$|ShardedExtScale$$|EngineScheduleFire|EngineEveryCancelChurn|NetworkSendSteadyState|AccountingSweep|ShardedBarrier' \
	BENCH_TIME=2x BENCH_COUNT=3 BENCH_STRICT=1 \
	BENCH_GUARD='Fig19,Fig20,ExtScale,ShardedExtScale' \
	./scripts/bench.sh $(CURDIR)/.bench-smoke.json
	rm -f $(CURDIR)/.bench-smoke.json

# Shard-count invariance under the race detector: the sharded engine must
# produce bit-identical results at any worker count, reproduce the
# cohort==explicit equivalence, and match the serial oracle on
# schedule-driven counters — across the headline systems and every fault
# scenario.
shard-equiv:
	$(GO) test -race -run 'ShardCountInvariance|ShardedCohortEquivalence|ShardedSerialOracle|ShardedConfigGates|ExtScaleShardInvariance|Sharded' ./internal/cdn ./internal/figures ./internal/sim

# CPU + heap profiles for the Figure 19 sweep (the engine hot path), ready
# for `go tool pprof`.
profile:
	$(GO) run ./cmd/experiments -scale small -only fig19 \
		-cpuprofile cpu.pprof -memprofile mem.pprof >/dev/null
	@echo "profile: wrote cpu.pprof and mem.pprof; inspect with:"
	@echo "  go tool pprof -top cpu.pprof"
	@echo "  go tool pprof -top -sample_index=alloc_objects mem.pprof"

# Fast full regeneration pass; see EXPERIMENTS.md for the paper-scale run.
experiments:
	$(GO) run ./cmd/experiments -scale small -metrics

# Audited interrupt/resume smoke: short sweep under the invariant auditor,
# SIGTERM mid-run, resume from the checkpoint, require byte-identical stdout.
audit-smoke:
	./scripts/audit_smoke.sh

# Scenario-plan canary matrix: the curated plans/ catalog must pass with
# byte-identical output across -parallel and across SIGTERM + resume, and a
# seeded-violation plan must fail with its assertion in the junit report.
plan-smoke:
	./scripts/plan_smoke.sh

# Multi-CDN federation canary: the provider-storm and broker-flap plans must
# pass (stranded_users == 0, zero auditor violations, cross-system compares)
# with byte-identical output across -parallel and across SIGTERM + resume,
# and the seeded bad-compare plan must fail with the compare in the report.
federation-smoke:
	./scripts/federation_smoke.sh

# Trace-import smoke: regenerate the committed crawl fixture, require the
# inferred bundle to match plans/bundles/smoke.json byte-for-byte, check
# format convergence and deterministic replay, and run the import plan.
import-smoke:
	./scripts/import_smoke.sh

# Short fuzz smoke over the tree fail/recover repair, the fault-scenario
# compiler, the population-spec, federation-spec and scenario-plan parsers,
# the access-log parser, and the whole trace-import path (one -fuzz pattern
# per package run, as go test requires; patterns are anchored where a
# package holds several fuzz targets).
fuzz:
	$(GO) test ./internal/overlay -run '^$$' -fuzz FuzzTreeFailRecover -fuzztime 10s
	$(GO) test ./internal/fault -run '^$$' -fuzz FuzzCompile -fuzztime 10s
	$(GO) test ./internal/workload -run '^$$' -fuzz FuzzParsePopulation -fuzztime 10s
	$(GO) test ./internal/federation -run '^$$' -fuzz FuzzParseFederation -fuzztime 10s
	$(GO) test ./internal/plan -run '^$$' -fuzz FuzzParsePlan -fuzztime 10s
	$(GO) test ./internal/trace -run '^$$' -fuzz 'FuzzParseAccessLog$$' -fuzztime 10s
	$(GO) test ./internal/traceimport -run '^$$' -fuzz 'FuzzImportTrace$$' -fuzztime 10s

# Coverage ratchet: per-package line-coverage floors on the packages the
# cohort user model touches. See scripts/coverage.sh for the floor table.
cover:
	./scripts/coverage.sh
