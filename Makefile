# Developer entry points. `make check` is the gate CI runs.

GO ?= go

.PHONY: check build vet test race bench experiments

check: build vet race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run xxx -bench . -benchtime 1x .

# Fast full regeneration pass; see EXPERIMENTS.md for the paper-scale run.
experiments:
	$(GO) run ./cmd/experiments -scale small -metrics
