# Developer entry points. `make check` is the gate CI runs.

GO ?= go

.PHONY: check build vet test race bench experiments fuzz audit-smoke

check: build vet race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run xxx -bench . -benchtime 1x .

# Fast full regeneration pass; see EXPERIMENTS.md for the paper-scale run.
experiments:
	$(GO) run ./cmd/experiments -scale small -metrics

# Audited interrupt/resume smoke: short sweep under the invariant auditor,
# SIGTERM mid-run, resume from the checkpoint, require byte-identical stdout.
audit-smoke:
	./scripts/audit_smoke.sh

# Short fuzz smoke over the tree fail/recover repair and the fault-scenario
# compiler (one -fuzz pattern per package run, as go test requires).
fuzz:
	$(GO) test ./internal/overlay -run '^$$' -fuzz FuzzTreeFailRecover -fuzztime 10s
	$(GO) test ./internal/fault -run '^$$' -fuzz FuzzCompile -fuzztime 10s
